package archlint

import (
	"go/ast"
	"go/token"
	"path"
)

// ringPass enforces AL013: the lock-free message ring's atomic protocol.
// The queue's exactly-once and fencing arguments rest on three structural
// invariants the type system cannot express:
//
//  1. Publish-last. A producer claims a slot, writes its message fields,
//     and only then flips the publication flag: the slot's state Store is
//     the last touch, and the flag is only ever Stored — never CAS'd or
//     swapped — because exactly one producer owns a claimed slot. A field
//     write positioned after the state Store would let the consumer read a
//     torn message.
//  2. Confinement. Slot and segment internals (qslot and chunk fields) and
//     the queue's fence word are implementation details of queue.go; any
//     other file reaching into them bypasses the protocol.
//  3. Fence discipline. Only msgQueue.detach advances the fence word, and
//     detach is called only from the routing/control layer (bus.go and
//     group.go) — the fence is how topology changes refuse stale routed
//     traffic, so a fence raised anywhere else would silently divert
//     messages to the slow path outside any topology change.
func (a *analysis) ringPass() {
	p := a.pkgByPath(a.rules.busPkg)
	if p == nil {
		return
	}
	for i, f := range p.files {
		base := path.Base(p.names[i])
		if base == "queue.go" {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					a.ringProtocolCheck(p, fd)
				}
			}
			continue
		}
		a.ringConfinementCheck(p, f, base)
	}
}

// ringConfinementCheck flags references to ring internals and misplaced
// fence raises in a bus file other than queue.go.
func (a *analysis) ringConfinementCheck(p *pkg, f *ast.File, base string) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			owner := fieldOwner(p, x)
			if owner == nil || owner.Obj().Pkg() != p.tpkg {
				return true
			}
			switch owner.Obj().Name() {
			case "qslot", "chunk":
				a.diag(CodeRingProtocol, x.Sel.Pos(),
					"ring internals (%s.%s) referenced outside queue.go: slot and segment state is the queue protocol's private vocabulary", owner.Obj().Name(), x.Sel.Name)
			case "msgQueue":
				if x.Sel.Name == "fence" {
					a.diag(CodeRingProtocol, x.Sel.Pos(),
						"queue fence word referenced outside queue.go: fencing is part of the ring protocol, raise it through msgQueue.detach")
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(p, x)
			if fn == nil || fn.Name() != "detach" {
				return true
			}
			recv := recvNamed(fn)
			if recv == nil || recv.Obj().Name() != "msgQueue" || recv.Obj().Pkg() != p.tpkg {
				return true
			}
			if base != "bus.go" && base != "group.go" {
				a.diag(CodeRingProtocol, x.Pos(),
					"queue fence raised (msgQueue.detach) outside the routing layer: only bus.go and group.go fence queues, as part of publishing a topology change")
			}
		}
		return true
	})
}

// ringProtocolCheck scans one queue.go function for publish-protocol
// violations: non-Store mutations of a slot's publication flag, fence
// mutations outside detach, and slot field writes positioned after the
// slot's state Store (publish must be the last touch).
func (a *analysis) ringProtocolCheck(p *pkg, fd *ast.FuncDecl) {
	inDetach := fd.Name.Name == "detach" && fd.Recv != nil

	// published maps a slot-holding identifier name to the position of its
	// LAST state Store in this function — the publish (earlier Stores are
	// abandon-and-return branches). Source order is claim -> write ->
	// publish, so any msg/ver write textually after that Store breaks the
	// protocol (a loop body keeps the order within each iteration, so the
	// positional comparison stays exact).
	published := map[string]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		owner := fieldOwner(p, inner)
		if owner == nil || owner.Obj().Pkg() != p.tpkg {
			return true
		}
		switch {
		case owner.Obj().Name() == "qslot" && inner.Sel.Name == "state":
			if sel.Sel.Name != "Store" && sel.Sel.Name != "Load" {
				a.diag(CodeRingProtocol, call.Pos(),
					"slot publication flag mutated with %s: a claimed slot has exactly one owner, the flag is Stored and Loaded only", sel.Sel.Name)
				return true
			}
			if sel.Sel.Name == "Store" {
				if id, ok := ast.Unparen(inner.X).(*ast.Ident); ok {
					if call.Pos() > published[id.Name] {
						published[id.Name] = call.Pos()
					}
				}
			}
		case owner.Obj().Name() == "msgQueue" && inner.Sel.Name == "fence":
			if !inDetach && sel.Sel.Name != "Load" {
				a.diag(CodeRingProtocol, call.Pos(),
					"queue fence mutated (%s) outside msgQueue.detach: only detach advances the fence word", sel.Sel.Name)
			}
		}
		return true
	})
	if len(published) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			owner := fieldOwner(p, sel)
			if owner == nil || owner.Obj().Name() != "qslot" || owner.Obj().Pkg() != p.tpkg {
				continue
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				continue
			}
			if storePos, seen := published[id.Name]; seen && as.Pos() > storePos {
				a.diag(CodeRingProtocol, as.Pos(),
					"slot field %s written after the slot's publication Store: publish must be the slot's last touch or the consumer can read a torn message", sel.Sel.Name)
			}
		}
		return true
	})
}
