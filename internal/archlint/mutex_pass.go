package archlint

import (
	"go/ast"
	"go/token"
	"path"
)

// pkgByPath returns the type-checked package with the given import path,
// or nil if it is absent or failed to check.
func (a *analysis) pkgByPath(importPath string) *pkg {
	for _, p := range a.checked() {
		if p.path == importPath {
			return p
		}
	}
	return nil
}

// netPkgs are the packages whose calls mean network I/O: never legal while
// the control-plane lock is held.
var netPkgs = map[string]bool{
	"net":      true,
	"net/http": true,
	"net/rpc":  true,
}

// blockingBusMethods are module-internal methods known to block (condition
// waits, deadline waits). Keyed by "Recv.Name".
var blockingBusMethods = map[string]bool{
	"msgQueue.pop":      true,
	"stateBox.await":    true,
	"Bus.AwaitDivulged": true,
	"Bus.AwaitRestored": true,
}

// muAcquiringBusMethods are the Bus methods that take Bus.mu; calling one
// with the lock held deadlocks, and calling one with a queue lock held
// inverts the sanctioned Bus.mu -> queue-lock order.
var muAcquiringBusMethods = map[string]bool{
	"edit":           true,
	"AddInstance":    true,
	"DeleteInstance": true,
	"AddBinding":     true,
	"DeleteBinding":  true,
	"Rebind":         true,
	"MoveQueue":      true,
	"DrainQueue":     true,
	"MoveState":      true,
	"writeSlow":      true,
}

// mutexPass enforces the control-plane locking discipline of the bus:
//
//	AL003  Bus.mu is referenced only from bus.go — the facade owns the
//	       writer lock; routing, queueing and transport never see it.
//	AL004  nothing blocking runs while Bus.mu is held: no channel sends or
//	       receives outside a select with default, no blocking selects, no
//	       condition/WaitGroup waits, sleeps, network or gob calls, no
//	       known-blocking or mu-reacquiring bus methods.
//	AL005  lock order: Bus.mu is taken before queue locks, never after —
//	       while a msgQueue lock (the consumer mu or the segment-growth
//	       growMu) is held, neither Bus.mu nor any mu-acquiring Bus
//	       method may be entered.
//
// The held-region analysis is intra-procedural and linear: Lock/Unlock
// statements toggle the held state, toggles inside nested blocks do not
// leak out (so an early-unlock-and-return branch does not end the outer
// region), and a deferred Unlock holds the region to the end of the
// function.
func (a *analysis) mutexPass() {
	p := a.pkgByPath(a.rules.busPkg)
	if p == nil {
		return
	}

	// AL003: Bus.mu outside bus.go.
	for i, f := range p.files {
		if path.Base(p.names[i]) == "bus.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "mu" {
				return true
			}
			if owner := fieldOwner(p, sel); owner != nil &&
				owner.Obj().Name() == "Bus" && owner.Obj().Pkg() == p.tpkg {
				a.diag(CodeMuConfine, sel.Sel.Pos(),
					"Bus.mu referenced outside bus.go: the control-plane lock is confined to the facade")
			}
			return true
		})
	}

	// AL004 + AL005: region scans per function.
	for _, f := range p.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.lockRegions(p, fd.Body, "Bus", "mu", func(n ast.Node) { a.checkBlocking(p, n) })
			a.lockRegions(p, fd.Body, "msgQueue", "mu", func(n ast.Node) { a.checkLockOrder(p, n) })
			a.lockRegions(p, fd.Body, "msgQueue", "growMu", func(n ast.Node) { a.checkLockOrder(p, n) })
		}
	}
}

// selectHasDefault reports whether sel carries a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// lockRegions walks body linearly tracking whether owner's named mutex
// field (owner being a named type of the bus package) is held, and applies
// visit to every node reached while it is. Function literals are skipped:
// their bodies run on other goroutines or after the region.
func (a *analysis) lockRegions(p *pkg, body *ast.BlockStmt, owner, field string, visit func(ast.Node)) {
	scanExpr := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if m != nil {
				visit(m)
			}
			return true
		})
	}
	var scan func(stmts []ast.Stmt, held bool) bool
	scan = func(stmts []ast.Stmt, held bool) bool {
		for _, st := range stmts {
			switch s := st.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if op, ok := isMuOp(p, call, p.tpkg, owner, field); ok {
						held = op == "Lock"
						continue
					}
				}
				if held {
					scanExpr(s)
				}
			case *ast.DeferStmt:
				// defer mu.Unlock() keeps the region held to the end;
				// other deferred work runs outside the scanned region.
			case *ast.GoStmt:
				// spawned work does not run under the caller's lock.
			case *ast.BlockStmt:
				scan(s.List, held)
			case *ast.LabeledStmt:
				scan([]ast.Stmt{s.Stmt}, held)
			case *ast.IfStmt:
				if held {
					scanExpr(s.Init)
					scanExpr(s.Cond)
				}
				scan(s.Body.List, held)
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					scan(e.List, held)
				case *ast.IfStmt:
					scan([]ast.Stmt{e}, held)
				}
			case *ast.ForStmt:
				if held {
					scanExpr(s.Init)
					scanExpr(s.Cond)
					scanExpr(s.Post)
				}
				scan(s.Body.List, held)
			case *ast.RangeStmt:
				if held {
					scanExpr(s.X)
				}
				scan(s.Body.List, held)
			case *ast.SwitchStmt:
				if held {
					scanExpr(s.Init)
					scanExpr(s.Tag)
				}
				for _, c := range s.Body.List {
					cc := c.(*ast.CaseClause)
					if held {
						for _, e := range cc.List {
							scanExpr(e)
						}
					}
					scan(cc.Body, held)
				}
			case *ast.TypeSwitchStmt:
				if held {
					scanExpr(s.Init)
					scanExpr(s.Assign)
				}
				for _, c := range s.Body.List {
					scan(c.(*ast.CaseClause).Body, held)
				}
			case *ast.SelectStmt:
				if held && !selectHasDefault(s) {
					visit(s)
					continue
				}
				// A select with default is non-blocking: its comm clauses
				// are exempt, the clause bodies still run under the lock.
				for _, c := range s.Body.List {
					scan(c.(*ast.CommClause).Body, held)
				}
			default:
				if held {
					scanExpr(st)
				}
			}
		}
		return held
	}
	scan(body.List, false)
}

// checkBlocking is the AL004 visitor for nodes reached under Bus.mu.
func (a *analysis) checkBlocking(p *pkg, n ast.Node) {
	switch x := n.(type) {
	case *ast.SendStmt:
		a.diag(CodeBlockUnderMu, x.Arrow,
			"channel send while Bus.mu is held: use a select with default or move it outside the lock")
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			a.diag(CodeBlockUnderMu, x.OpPos, "channel receive while Bus.mu is held")
		}
	case *ast.SelectStmt:
		a.diag(CodeBlockUnderMu, x.Select, "blocking select (no default case) while Bus.mu is held")
	case *ast.CallExpr:
		if what, ok := a.blockingCall(p, x); ok {
			a.diag(CodeBlockUnderMu, x.Pos(), "%s while Bus.mu is held", what)
		}
	}
}

// blockingCall classifies a call as blocking (or mu-reacquiring) for AL004.
func (a *analysis) blockingCall(p *pkg, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(p, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	recv := recvNamed(fn)
	if recv == nil {
		switch pp := pkgPathOf(fn); {
		case pp == "time" && name == "Sleep":
			return "time.Sleep", true
		case netPkgs[pp]:
			return pp + "." + name + " (network I/O)", true
		}
		return "", false
	}
	rn := recv.Obj().Name()
	rp := ""
	if recv.Obj().Pkg() != nil {
		rp = recv.Obj().Pkg().Path()
	}
	switch {
	case rp == "sync" && name == "Wait" && (rn == "Cond" || rn == "WaitGroup"):
		return "sync." + rn + ".Wait", true
	case rp == "encoding/gob" && (name == "Encode" || name == "Decode"):
		return "gob." + rn + "." + name + " (network-backed I/O)", true
	case netPkgs[rp]:
		return rp + "." + rn + "." + name + " (network I/O)", true
	case rp == a.rules.busPkg && blockingBusMethods[rn+"."+name]:
		return "blocking call " + rn + "." + name, true
	case rp == a.rules.busPkg && rn == "Bus" && muAcquiringBusMethods[name]:
		return "(*Bus)." + name + " (re-acquires Bus.mu)", true
	}
	return "", false
}

// checkLockOrder is the AL005 visitor for nodes reached under a msgQueue
// lock.
func (a *analysis) checkLockOrder(p *pkg, n ast.Node) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	if op, ok := isMuOp(p, call, p.tpkg, "Bus", "mu"); ok && op == "Lock" {
		a.diag(CodeLockOrder, call.Pos(),
			"Bus.mu acquired while a queue lock is held: the sanctioned order is Bus.mu before queue locks")
		return
	}
	fn := calleeFunc(p, call)
	if fn == nil {
		return
	}
	if recv := recvNamed(fn); recv != nil && recv.Obj().Name() == "Bus" &&
		recv.Obj().Pkg() == p.tpkg && muAcquiringBusMethods[fn.Name()] {
		a.diag(CodeLockOrder, call.Pos(),
			"(*Bus).%s called while a queue lock is held: it takes Bus.mu, inverting the sanctioned lock order", fn.Name())
	}
}
