package archlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathPass enforces AL007: functions annotated //archlint:hotpath stay
// free of allocating constructs. This is the static complement of the
// allocs/msg=0 benchmark artifacts: the benchmarks prove the paths were
// allocation-free at measurement time, the annotation keeps them that way.
//
// Flagged constructs: closures capturing enclosing variables, explicit and
// implicit interface conversions (calls, assignments, returns), any call
// into fmt, make/new, append except the amortized self-append form
// x = append(x, ...), non-constant string concatenation, and
// string<->[]byte/[]rune conversions. The check is intra-procedural by
// contract: cold branches belong in separate, unannotated helpers.
func (a *analysis) hotpathPass() {
	for _, p := range a.checked() {
		for _, f := range p.files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isHotpath(fd) {
					continue
				}
				a.checkHotpath(p, fd)
			}
		}
	}
}

func (a *analysis) checkHotpath(p *pkg, fd *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.FuncLit:
			if capt := capturedVar(p, fd, x); capt != "" {
				a.diag(CodeHotpathAlloc, x.Pos(),
					"closure capturing %q allocates in hot path %s", capt, fd.Name.Name)
			}
		case *ast.CallExpr:
			a.checkHotpathCall(p, fd, x, stack)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(p, x) && p.info.Types[x].Value == nil {
				a.diag(CodeHotpathAlloc, x.OpPos,
					"string concatenation allocates in hot path %s", fd.Name.Name)
			}
		case *ast.AssignStmt:
			if x.Tok == token.ASSIGN && len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					if tv, ok := p.info.Types[x.Lhs[i]]; ok {
						a.checkIfaceConv(p, fd, tv.Type, x.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if x.Type != nil {
				if tv, ok := p.info.Types[x.Type]; ok {
					for _, v := range x.Values {
						a.checkIfaceConv(p, fd, tv.Type, v)
					}
				}
			}
		case *ast.ReturnStmt:
			a.checkHotpathReturn(p, fd, x)
		}
		return true
	})
}

// capturedVar returns the name of a variable the literal captures from the
// enclosing function, or "". Captures force the closure (and often the
// captured variables) to escape to the heap.
func capturedVar(p *pkg, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= fd.Pos() && pos < fd.End() && (pos < lit.Pos() || pos >= lit.End()) {
			found = v.Name()
		}
		return true
	})
	return found
}

func isStringType(p *pkg, e ast.Expr) bool {
	tv, ok := p.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkIfaceConv flags a concrete (non-nil) value converted into an
// interface-typed slot.
func (a *analysis) checkIfaceConv(p *pkg, fd *ast.FuncDecl, dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := p.info.Types[src]
	if !ok || tv.IsNil() || tv.Type == nil || types.IsInterface(tv.Type) {
		return
	}
	a.diag(CodeHotpathAlloc, src.Pos(),
		"interface conversion (%s to %s) allocates in hot path %s",
		types.TypeString(tv.Type, nil), types.TypeString(dst, nil), fd.Name.Name)
}

func (a *analysis) checkHotpathReturn(p *pkg, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	if fd.Type.Results == nil || len(ret.Results) == 0 {
		return
	}
	var resTypes []types.Type
	for _, field := range fd.Type.Results.List {
		tv, ok := p.info.Types[field.Type]
		if !ok {
			return
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resTypes = append(resTypes, tv.Type)
		}
	}
	if len(ret.Results) != len(resTypes) {
		return // multi-value call forwarding: types already match
	}
	for i, r := range ret.Results {
		a.checkIfaceConv(p, fd, resTypes[i], r)
	}
}

func (a *analysis) checkHotpathCall(p *pkg, fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	fun := ast.Unparen(call.Fun)

	// Builtins: make and new allocate; append is allowed only in the
	// amortized self-append form x = append(x, ...).
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := p.info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "make", "new":
				a.diag(CodeHotpathAlloc, call.Pos(), "%s allocates in hot path %s", id.Name, fd.Name.Name)
			case "append":
				if !isSelfAppend(call, stack) {
					a.diag(CodeHotpathAlloc, call.Pos(),
						"append outside the amortized x = append(x, ...) form allocates in hot path %s", fd.Name.Name)
				}
			}
			return
		}
	}

	// Conversions: interface targets and string<->byte/rune-slice copies.
	if tv, ok := p.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		dst := tv.Type
		if types.IsInterface(dst) {
			a.checkIfaceConv(p, fd, dst, call.Args[0])
			return
		}
		if stringByteConv(p, dst, call.Args[0]) {
			a.diag(CodeHotpathAlloc, call.Pos(),
				"string/byte-slice conversion copies in hot path %s", fd.Name.Name)
		}
		return
	}

	// Calls into fmt are formatting, reflection and allocation all at once.
	if fn := calleeFunc(p, call); fn != nil && pkgPathOf(fn) == "fmt" {
		a.diag(CodeHotpathAlloc, call.Pos(),
			"call into fmt (%s) allocates in hot path %s; extract the cold branch into an unannotated helper", fn.Name(), fd.Name.Name)
		return
	}

	// Implicit interface conversions at the call boundary.
	sig, ok := funcSig(p, call)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed through, no per-element conversion
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		a.checkIfaceConv(p, fd, pt, arg)
	}
}

// funcSig resolves the signature a call invokes, for ordinary and
// method calls alike.
func funcSig(p *pkg, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := p.info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

// isSelfAppend reports whether call (a builtin append) appears as
// x = append(x, ...) with a structurally identical left-hand side.
func isSelfAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 || len(stack) < 2 {
		return false
	}
	asg, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Rhs[0] != call {
		return false
	}
	return types.ExprString(asg.Lhs[0]) == types.ExprString(call.Args[0])
}

// stringByteConv reports a conversion between string and []byte/[]rune.
func stringByteConv(p *pkg, dst types.Type, arg ast.Expr) bool {
	tv, ok := p.info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	// Constant string conversions are folded at compile time.
	if tv.Value != nil {
		return false
	}
	return (isString(dst) && isByteOrRuneSlice(tv.Type)) ||
		(isByteOrRuneSlice(dst) && isString(tv.Type))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
