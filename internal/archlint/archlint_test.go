package archlint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/diag"
)

// runOn analyzes the fixture module at dir and returns its report.
func runOn(t *testing.T, dir string) *diag.Report {
	t.Helper()
	report, err := Run(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Run(%s): %v", dir, err)
	}
	return report
}

// compareGolden checks got against the golden file, rewriting it when
// ARCHLINT_UPDATE=1 is set.
func compareGolden(t *testing.T, goldenPath, got string) {
	t.Helper()
	if os.Getenv("ARCHLINT_UPDATE") == "1" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("update %s: %v", goldenPath, err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with ARCHLINT_UPDATE=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestFixtures runs every testdata/ALxxx fixture pair: the bad module must
// reproduce its golden text and JSON reports byte for byte and contain at
// least one diagnostic of the code under test; the ok module must be clean.
func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "AL") {
			continue
		}
		code := e.Name()
		t.Run(code+"/bad", func(t *testing.T) {
			report := runOn(t, filepath.Join("testdata", code, "bad"))
			if len(report.ByCode(code)) == 0 {
				t.Errorf("bad fixture produced no %s diagnostic:\n%s", code, report.Text())
			}
			for _, d := range report.Diags {
				if d.Code != code {
					t.Errorf("bad fixture leaked a foreign diagnostic: %s", d)
				}
			}
			compareGolden(t, filepath.Join("testdata", code, "bad.txt"), report.Text())
			compareGolden(t, filepath.Join("testdata", code, "bad.json"), report.JSON())
		})
		t.Run(code+"/ok", func(t *testing.T) {
			report := runOn(t, filepath.Join("testdata", code, "ok"))
			if len(report.Diags) != 0 {
				t.Errorf("ok fixture is not clean:\n%s", report.Text())
			}
		})
	}
}

// TestSelfHost is the self-hosting gate: archlint must run clean on the
// repository that defines it.
func TestSelfHost(t *testing.T) {
	report := runOn(t, "../..")
	if len(report.Diags) != 0 {
		t.Errorf("repository violates its own architectural invariants:\n%s", report.Text())
	}
}

// TestDeterminism pins that two runs over the same tree render byte-identical
// sorted output in both formats.
func TestDeterminism(t *testing.T) {
	dir := filepath.Join("testdata", "AL007", "bad")
	first := runOn(t, dir)
	second := runOn(t, dir)
	if first.Text() != second.Text() {
		t.Errorf("text output is not deterministic:\n--- first ---\n%s--- second ---\n%s",
			first.Text(), second.Text())
	}
	if first.JSON() != second.JSON() {
		t.Errorf("JSON output is not deterministic")
	}
	for i := 1; i < len(first.Diags); i++ {
		a, b := first.Diags[i-1], first.Diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("report not sorted: %s before %s", a, b)
		}
	}
}
