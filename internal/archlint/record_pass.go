package archlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// recordPass enforces AL012: record-log appends are confined to the queue's
// consumer drain. The replay subsystem's correctness argument — a recorded
// window's QSeq order is the queue's true delivery order — holds because
// replay.QueueLog.Append runs inside msgQueue.record, the single hook the
// consumer-side pop/tryPop path calls as it removes a message: ring
// slot-claim order is delivery order, so appending at consumption yields
// the true total order. An append from a producer path, from mh, reconfig,
// the transport files, or any other layer would interleave records outside
// that order and silently break every downstream consumer (the preflight
// gate, cmd/mhreplay, the /replay endpoint). Resolution is by type — a
// same-named method on an unrelated type does not match — and within
// internal/bus the append must come from the record method of msgQueue in
// queue.go itself.
func (a *analysis) recordPass() {
	for _, p := range a.checked() {
		if p.path == a.rules.replayPkg {
			continue
		}
		for id, obj := range p.info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || fn.Name() != "Append" || pkgPathOf(fn) != a.rules.replayPkg {
				continue
			}
			recv := recvNamed(fn)
			if recv == nil || recv.Obj().Name() != "QueueLog" {
				continue
			}
			if p.path == a.rules.busPkg && a.mod.fileBase(id.Pos()) == "queue.go" {
				if fd := enclosingFuncDecl(p, id.Pos()); fd != nil && fd.Name.Name == "record" &&
					fd.Recv != nil {
					continue
				}
			}
			a.diag(CodeRecordAppend, id.Pos(),
				"record-log append (QueueLog.Append) outside the consumer drain: only msgQueue.record in queue.go may record, at consumption where ring slot order is delivery order")
		}
	}
}

// enclosingFuncDecl returns the top-level function declaration of p whose
// body spans pos, or nil.
func enclosingFuncDecl(p *pkg, pos token.Pos) *ast.FuncDecl {
	for _, f := range p.files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}
