package archlint

import "go/types"

// recordPass enforces AL012: record-log appends are confined to the bus
// delivery layer. The replay subsystem's correctness argument — a recorded
// window's QSeq order is the queue's true delivery order — holds only
// because replay.QueueLog.Append runs inside msgQueue's push under the
// queue lock. An append from mh, reconfig, the transport files, or any
// other layer would interleave records outside that lock and silently
// break every downstream consumer (the preflight gate, cmd/mhreplay, the
// /replay endpoint). Resolution is by type — a same-named method on an
// unrelated type does not match — and within internal/bus the append must
// come from queue.go itself.
func (a *analysis) recordPass() {
	for _, p := range a.checked() {
		if p.path == a.rules.replayPkg {
			continue
		}
		for id, obj := range p.info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || fn.Name() != "Append" || pkgPathOf(fn) != a.rules.replayPkg {
				continue
			}
			recv := recvNamed(fn)
			if recv == nil || recv.Obj().Name() != "QueueLog" {
				continue
			}
			if p.path == a.rules.busPkg && a.mod.fileBase(id.Pos()) == "queue.go" {
				continue
			}
			a.diag(CodeRecordAppend, id.Pos(),
				"record-log append (QueueLog.Append) outside the bus delivery layer: only queue.go may record, under the destination queue's lock")
		}
	}
}
