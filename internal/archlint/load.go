package archlint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// pkg is one parsed and type-checked package of the module under analysis.
// Test files (_test.go) are excluded: the invariants archlint enforces are
// production-code invariants, and the regex walkers it replaces skipped
// tests too.
type pkg struct {
	path     string // import path
	rel      string // module-root-relative directory, "" for the root
	files    []*ast.File
	names    []string // file names relative to the module root, parallel to files
	tpkg     *types.Package
	info     *types.Info
	typeErrs []error  // type-check failures; non-empty disables deep passes
	imports  []string // module-internal import paths
}

// module is the whole loaded module: every non-test package, parsed and
// type-checked in dependency order.
type module struct {
	root   string
	path   string // module path from go.mod
	fset   *token.FileSet
	pkgs   []*pkg // topological order, dependencies first
	byPath map[string]*pkg
}

// fileBase returns the base name of the file containing pos.
func (m *module) fileBase(pos token.Pos) string {
	return filepath.Base(m.fset.Position(pos).Filename)
}

// stdImporter resolves non-module imports from the installed toolchain's
// export data. Shared across loads so repeated Run calls (tests, fixtures)
// reuse the stdlib cache.
var stdImporter = sync.OnceValue(func() types.Importer { return importer.Default() })

// moduleImporter resolves module-internal imports from the packages already
// checked in topological order and delegates everything else to the
// standard-library importer.
type moduleImporter struct {
	modPath string
	pkgs    map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("package %s failed to type-check", path)
		}
		return p, nil
	}
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		return nil, fmt.Errorf("module package %s not loaded (import cycle?)", path)
	}
	return stdImporter().Import(path)
}

// modulePath extracts the module path from the go.mod at root.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				rest = p
			}
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", filepath.Join(root, "go.mod"))
}

// loadModule parses every non-test package under root and type-checks the
// module-internal import graph in topological order. Parse and type errors
// do not abort the load: they are recorded per package so the analysis can
// report them as diagnostics.
func loadModule(root string) (*module, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	m := &module{
		root:   root,
		path:   modPath,
		fset:   token.NewFileSet(),
		byPath: map[string]*pkg{},
	}

	// Collect the .go files of every package directory. testdata trees,
	// hidden directories, and _test.go files are skipped.
	byDir := map[string][]string{} // relative dir -> file base names
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path == root {
				return nil
			}
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		if rel == "." {
			rel = ""
		}
		byDir[rel] = append(byDir[rel], name)
		return nil
	})
	if err != nil {
		return nil, err
	}

	dirs := make([]string, 0, len(byDir))
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	for _, rel := range dirs {
		importPath := modPath
		if rel != "" {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		p := &pkg{path: importPath, rel: rel}
		sort.Strings(byDir[rel])
		seen := map[string]bool{}
		for _, base := range byDir[rel] {
			// Files are registered under module-root-relative names so
			// diagnostic positions render identically wherever the
			// analyzer is invoked from.
			relName := filepath.ToSlash(filepath.Join(rel, base))
			src, err := os.ReadFile(filepath.Join(root, rel, base))
			if err != nil {
				p.typeErrs = append(p.typeErrs, err)
				continue
			}
			f, err := parser.ParseFile(m.fset, relName, src, parser.ParseComments)
			if err != nil {
				p.typeErrs = append(p.typeErrs, err)
			}
			if f == nil {
				continue
			}
			p.files = append(p.files, f)
			p.names = append(p.names, relName)
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if (ip == modPath || strings.HasPrefix(ip, modPath+"/")) && !seen[ip] {
					seen[ip] = true
					p.imports = append(p.imports, ip)
				}
			}
		}
		if len(p.files) == 0 && len(p.typeErrs) == 0 {
			continue
		}
		sort.Strings(p.imports)
		m.pkgs = append(m.pkgs, p)
		m.byPath[p.path] = p
	}

	if err := m.topoSort(); err != nil {
		return nil, err
	}
	m.typeCheck()
	return m, nil
}

// topoSort reorders m.pkgs so that every package follows its
// module-internal dependencies. Import cycles are a hard error: the Go
// toolchain rejects them too, so hitting one means the analysis input is
// not a buildable module.
func (m *module) topoSort() error {
	const (
		white = iota
		grey
		black
	)
	color := map[string]int{}
	var order []*pkg
	var visit func(p *pkg, chain []string) error
	visit = func(p *pkg, chain []string) error {
		switch color[p.path] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("import cycle: %s", strings.Join(append(chain, p.path), " -> "))
		}
		color[p.path] = grey
		for _, dep := range p.imports {
			if q, ok := m.byPath[dep]; ok && q != p {
				if err := visit(q, append(chain, p.path)); err != nil {
					return err
				}
			}
		}
		color[p.path] = black
		order = append(order, p)
		return nil
	}
	for _, p := range m.pkgs {
		if err := visit(p, nil); err != nil {
			return err
		}
	}
	m.pkgs = order
	return nil
}

// typeCheck checks every package in topological order, recording failures
// on the package rather than aborting: a broken package surfaces as AL001
// and is excluded from the type-sensitive passes.
func (m *module) typeCheck() {
	imp := &moduleImporter{modPath: m.path, pkgs: map[string]*types.Package{}}
	for _, p := range m.pkgs {
		if len(p.files) == 0 {
			imp.pkgs[p.path] = nil
			continue
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				p.typeErrs = append(p.typeErrs, err)
			},
		}
		tpkg, _ := conf.Check(p.path, m.fset, p.files, info)
		p.tpkg = tpkg
		p.info = info
		if len(p.typeErrs) > 0 {
			imp.pkgs[p.path] = nil
		} else {
			imp.pkgs[p.path] = tpkg
		}
	}
}
