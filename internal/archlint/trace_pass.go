package archlint

import (
	"go/ast"
	"go/types"
)

// tracePass enforces AL002: the causal clock is advanced only inside the
// transport layer. Minting a trace (Tracer.MintTrace), deriving a span
// (ChildSpan) and stamping an outbound message (Stamp) are confined to
// internal/bus and the trace package itself; every other package must
// carry contexts opaquely. Resolution is by type — a comment or string
// mentioning MintTrace, or a same-named method on an unrelated type, does
// not match.
func (a *analysis) tracePass() {
	minting := map[string]bool{"MintTrace": true, "ChildSpan": true, "Stamp": true}
	for _, p := range a.checked() {
		if p.path == a.rules.busPkg || p.path == a.rules.tracePkg {
			continue
		}
		for id, obj := range p.info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || !minting[fn.Name()] || pkgPathOf(fn) != a.rules.tracePkg {
				continue
			}
			recv := recvNamed(fn)
			if recv == nil || recv.Obj().Name() != "Tracer" {
				continue
			}
			a.diag(CodeTraceMint, id.Pos(),
				"trace minting (%s.%s) outside the bus layer: only internal/bus and internal/telemetry/trace may advance the causal clock",
				recv.Obj().Name(), fn.Name())
		}
	}
}

// spawnPass enforces AL009: every go statement is an allowlisted spawn
// site, annotated //archlint:spawn <reason> on its line or the line above.
// Unannotated goroutines are how leaks and orphaned workers enter a
// long-lived reconfigurable process.
func (a *analysis) spawnPass() {
	for _, p := range a.mod.pkgs {
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				pos := a.mod.fset.Position(g.Pos())
				if !a.ann.spawnAllowed(pos.Filename, pos.Line) {
					a.diag(CodeSpawn, g.Pos(),
						"go statement without //archlint:spawn annotation: goroutine spawn sites are allowlisted")
				}
				return true
			})
		}
	}
}
