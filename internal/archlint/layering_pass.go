package archlint

import (
	"go/ast"
	"path"
	"strconv"
)

// layeringPass enforces the two layering invariants:
//
//	AL010  the package-level DAG. Packages are assigned layers (leaf
//	       utilities 10, the bus 20, the layers composed on top of it 30);
//	       a layered package may import only its own layer or below. This
//	       is what keeps telemetry ignorant of the bus it measures and the
//	       bus ignorant of the reconfiguration protocol driving it.
//	AL011  the file-level decomposition inside internal/bus. routing.go is
//	       the bottom (pure snapshot algebra), queue.go sits above it and
//	       may use only the shared message vocabulary and the stale-route
//	       sentinel, and the transport files reach routing state only
//	       through the Bus facade and the published snapshot.
//
// AL010 needs only the ASTs, so it also covers packages that failed to
// type-check; AL011 resolves references through go/types.
func (a *analysis) layeringPass() {
	for _, p := range a.mod.pkgs {
		lp, ok := a.rules.layers[p.path]
		if !ok {
			continue
		}
		for _, f := range p.files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if lq, ok := a.rules.layers[ip]; ok && lq > lp {
					a.diag(CodeImportLayer, imp.Pos(),
						"%s (layer %d) imports %s (layer %d): the architectural DAG points the other way",
						p.path, lp, ip, lq)
				}
			}
		}
	}

	p := a.pkgByPath(a.rules.busPkg)
	if p == nil {
		return
	}
	for i, f := range p.files {
		base := path.Base(p.names[i])
		ruleSet, ok := a.rules.busFiles[base]
		if !ok {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.info.Uses[id]
			if obj == nil || obj.Pkg() != p.tpkg || !obj.Pos().IsValid() {
				return true
			}
			declFile := a.mod.fileBase(obj.Pos())
			allow, restricted := ruleSet[declFile]
			if !restricted || declFile == base {
				return true
			}
			for _, name := range allow {
				if name == obj.Name() {
					return true
				}
			}
			a.diag(CodeBusFileLayer, id.Pos(),
				"%s references %s (declared in %s): the %s layer may not depend on it",
				base, obj.Name(), declFile, busLayerName(base))
			return true
		})
	}
}

func busLayerName(base string) string {
	switch base {
	case "routing.go":
		return "routing"
	case "queue.go":
		return "queueing"
	default:
		return "transport"
	}
}
