package archlint

import (
	"go/ast"
	"path"
)

// snapshotPass enforces AL006, the copy-on-write discipline of the routing
// snapshot:
//
//   - the Bus.routing pointer is touched only as the receiver of an atomic
//     Load or Store — never copied, aliased, or passed around;
//   - Store (the publish) happens only in bus.go, under the writer lock —
//     routing, queueing and transport read snapshots, they never publish;
//   - routingTable fields are written only inside routing.go, where the
//     builder constructs the successor table before it is published; after
//     publish a table is immutable.
func (a *analysis) snapshotPass() {
	p := a.pkgByPath(a.rules.busPkg)
	if p == nil {
		return
	}
	for i, f := range p.files {
		base := path.Base(p.names[i])
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "routing" {
				if owner := fieldOwner(p, sel); owner != nil &&
					owner.Obj().Name() == "Bus" && owner.Obj().Pkg() == p.tpkg {
					a.checkRoutingUse(base, sel, stack)
				}
			}
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					a.checkTableWrite(p, base, lhs)
				}
			case *ast.IncDecStmt:
				a.checkTableWrite(p, base, s.X)
			}
			return true
		})
	}
}

// checkRoutingUse validates one appearance of the Bus.routing selector
// against the atomic-access discipline.
func (a *analysis) checkRoutingUse(base string, sel *ast.SelectorExpr, stack []ast.Node) {
	// stack ends with ... parent, sel.
	if len(stack) >= 3 {
		if pSel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && pSel.X == sel {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == pSel {
				switch pSel.Sel.Name {
				case "Load":
					return
				case "Store":
					if base != "bus.go" {
						a.diag(CodeSnapshot, sel.Pos(),
							"routing snapshot published outside bus.go: the copy-on-write publish site lives behind the writer lock in the facade")
					}
					return
				}
			}
		}
	}
	a.diag(CodeSnapshot, sel.Pos(),
		"routing snapshot pointer accessed other than via atomic Load/Store")
}

// checkTableWrite flags assignments through routingTable fields outside the
// builder in routing.go. The left-hand side is unwrapped through index and
// dereference expressions so map/slice element writes count too.
func (a *analysis) checkTableWrite(p *pkg, base string, lhs ast.Expr) {
	if base == "routing.go" {
		return
	}
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		default:
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				if owner := fieldOwner(p, sel); owner != nil &&
					owner.Obj().Name() == "routingTable" && owner.Obj().Pkg() == p.tpkg {
					a.diag(CodeSnapshot, sel.Pos(),
						"routingTable.%s written outside routing.go: published tables are immutable, mutate a draft and republish", sel.Sel.Name)
				}
			}
			return
		}
	}
}
