// Package archlint is the architectural-invariant analyzer for the
// bus/reconfig substrate. Where internal/analyze checks a *module
// program's* reconfiguration safety (the paper's programmer obligations),
// archlint checks the *runtime's own source* for the structural invariants
// its safe-replacement argument rests on: causal bookkeeping confined to
// the transport layer, topology mutated only through journaled primitives,
// the message hot path wait-free and allocation-free, and the
// routing/queueing/transport layering acyclic.
//
// The analyzer parses and type-checks the whole module with go/parser and
// go/types (stdlib only — go.mod stays dependency-free) and reports every
// violation as a Diagnostic with a stable ALxxx code, rendered via the
// shared internal/diag package in the same text and JSON forms as
// cmd/mhlint. The suite is self-hosting: `archlint ./...` must exit clean
// on this repository, and scripts/check.sh enforces that before the
// race-detector runs.
package archlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/diag"
)

// Diagnostic codes. Codes are stable across releases: tools may match on
// them, and the README documents each one. Every archlint finding is an
// error: an architectural invariant either holds or it does not.
const (
	// CodeTypeError: a package fails to parse or type-check; deep passes
	// are skipped for it.
	CodeTypeError = "AL001"
	// CodeTraceMint: trace minting (Tracer.MintTrace/ChildSpan/Stamp)
	// outside internal/bus and internal/telemetry/trace.
	CodeTraceMint = "AL002"
	// CodeMuConfine: the Bus.mu control-plane lock referenced outside
	// bus.go.
	CodeMuConfine = "AL003"
	// CodeBlockUnderMu: a blocking construct (channel operation, Wait,
	// sleep, network or gob call, mu-reacquiring Bus method) while Bus.mu
	// is held.
	CodeBlockUnderMu = "AL004"
	// CodeLockOrder: Bus.mu (or a Bus method that takes it) acquired while
	// a message-queue lock is held — the sanctioned order is Bus.mu before
	// queue locks.
	CodeLockOrder = "AL005"
	// CodeSnapshot: the routing snapshot pointer accessed other than via
	// atomic Load/Store, published outside bus.go, or a routingTable field
	// written outside the copy-on-write builder in routing.go.
	CodeSnapshot = "AL006"
	// CodeHotpathAlloc: an allocating construct (capturing closure,
	// interface conversion, fmt call, make/new, non-amortized append,
	// string concatenation or conversion) inside a function annotated
	// //archlint:hotpath.
	CodeHotpathAlloc = "AL007"
	// CodeUnjournaled: a topology-mutating call inside a reconfig
	// transaction (func ...Tx) with no compensating journal.record nearby
	// and before the journal is discarded at the commit point.
	CodeUnjournaled = "AL008"
	// CodeSpawn: a go statement without an //archlint:spawn annotation on
	// the same line or the line above.
	CodeSpawn = "AL009"
	// CodeImportLayer: a package imports a package of a higher
	// architectural layer (e.g. telemetry importing bus).
	CodeImportLayer = "AL010"
	// CodeBusFileLayer: a bus source file references a declaration of a
	// file higher in the routing -> queueing -> transport decomposition
	// than its layer permits.
	CodeBusFileLayer = "AL011"
	// CodeRecordAppend: a record-log append (replay.QueueLog.Append)
	// outside msgQueue's consumer-drain hook (msgQueue.record in queue.go)
	// — recorded QSeq is the true delivery order only because appends
	// happen at consumption, where ring slot-claim order is delivery order.
	CodeRecordAppend = "AL012"
	// CodeRingProtocol: a violation of the lock-free ring's atomic
	// protocol — slot publication flags written after the publish or
	// CAS'd, ring internals (slot/segment fields, the fence word) touched
	// outside queue.go, or the fence raised outside the routing layer.
	CodeRingProtocol = "AL013"
	// CodeObsRing: an observability-ring write outside its designated
	// feeder — an event-log append (evlog.Log.Append) from a layer other
	// than the reconfig supervisor or the top-level observer bridge, or a
	// window roll (timeseries.Roller.Roll) outside the roller's own
	// background loop.
	CodeObsRing = "AL014"
)

// Config parameterizes a run.
type Config struct {
	// Dir is the module root (the directory holding go.mod).
	Dir string
}

// rules binds the invariant passes to the module's package layout. Paths
// are derived from the module path so the fixtures (module "repro") and the
// real repository share one rule set.
type rules struct {
	busPkg        string // the message bus: owns routing snapshots and Bus.mu
	tracePkg      string // the trace clock: the only other legal minting site
	reconfigPkg   string // the transaction layer: mutations must be journaled
	replayPkg     string // the record ring: appends confined to bus delivery
	evlogPkg      string // the event log: appends confined to its feeders
	timeseriesPkg string // the window roller: rolls confined to its own loop

	// layers is the architectural DAG for AL010: a package may import only
	// packages at its own layer or below. Unlisted packages (top-level
	// composition, cmd/, examples, the analyzers) are unconstrained.
	layers map[string]int

	// busFiles is the intra-package layering for AL011, keyed by the
	// referencing file's base name. Each entry maps a declaring file to
	// the allowlist of its declarations the referencing file may use; a
	// nil allowlist forbids every reference.
	busFiles map[string]map[string][]string
}

func defaultRules(modPath string) *rules {
	p := func(s string) string { return modPath + "/" + s }
	return &rules{
		busPkg:        p("internal/bus"),
		tracePkg:      p("internal/telemetry/trace"),
		reconfigPkg:   p("internal/reconfig"),
		replayPkg:     p("internal/replay"),
		evlogPkg:      p("internal/telemetry/evlog"),
		timeseriesPkg: p("internal/telemetry/timeseries"),
		layers: map[string]int{
			p("internal/telemetry"):            10,
			p("internal/telemetry/trace"):      10,
			p("internal/telemetry/evlog"):      10,
			p("internal/telemetry/timeseries"): 10,
			p("internal/telemetry/health"):     10,
			p("internal/faultinject"):          10,
			p("internal/codec"):                10,
			p("internal/state"):                10,
			p("internal/checkpoint"):           10,
			p("internal/quiesce"):              10,
			p("internal/replay"):               10,
			p("internal/bus"):                  20,
			p("internal/mh"):                   30,
			p("internal/reconfig"):             30,
			p("internal/replay/rerun"):         30,
		},
		busFiles: map[string]map[string][]string{
			// Routing is the bottom of the decomposition: it may not know
			// about queueing or transport.
			"routing.go": {
				"queue.go":  nil,
				"attach.go": nil,
				"tcp.go":    nil,
				"port.go":   nil,
			},
			// Queueing sits above routing: it may use the shared message
			// vocabulary (the Message type and its fields — the record hook
			// reads them to describe a delivery) and the stale-route
			// sentinel, nothing else.
			"queue.go": {
				"bus.go": {"Message", "Endpoint", "TraceContext",
					"From", "Instance", "Interface", "Data", "Trace"},
				"routing.go": {"errStaleRoute"},
				"attach.go":  nil,
				"tcp.go":     nil,
				"port.go":    nil,
				"event.go":   nil,
			},
			// Transport consults routing only through the Bus facade and
			// the published snapshot — never the mutation internals.
			"attach.go": {"routing.go": nil},
			"tcp.go":    {"routing.go": nil},
			"port.go":   {"routing.go": nil},
		},
	}
}

// analysis is the state of one run over a loaded module.
type analysis struct {
	mod    *module
	rules  *rules
	report *diag.Report
	ann    *annotations
}

// Run loads the module at cfg.Dir and applies every invariant pass,
// returning the sorted report. The returned error covers only failures to
// load at all (missing go.mod, unreadable tree, import cycle); source that
// parses or checks badly is reported as AL001 diagnostics instead.
func Run(cfg Config) (*diag.Report, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	m, err := loadModule(dir)
	if err != nil {
		return nil, err
	}
	a := &analysis{
		mod:    m,
		rules:  defaultRules(m.path),
		report: &diag.Report{},
		ann:    collectAnnotations(m),
	}
	a.typeErrorPass()
	a.tracePass()
	a.recordPass()
	a.ringPass()
	a.obsRingPass()
	a.mutexPass()
	a.snapshotPass()
	a.hotpathPass()
	a.journalPass()
	a.spawnPass()
	a.layeringPass()
	a.report.Sort()
	return a.report, nil
}

// diag records a finding unless an //archlint:allow directive covers it.
func (a *analysis) diag(code string, pos token.Pos, format string, args ...any) {
	position := a.mod.fset.Position(pos)
	if a.ann.allowed(position.Filename, position.Line, code) {
		return
	}
	a.report.Add(code, diag.SevError, position, format, args...)
}

// typeErrorPass reports packages that failed to parse or type-check.
func (a *analysis) typeErrorPass() {
	const cap = 20
	for _, p := range a.mod.pkgs {
		for i, err := range p.typeErrs {
			if i == cap {
				a.report.Add(CodeTypeError, diag.SevError, token.Position{},
					"%s: further errors omitted", p.path)
				break
			}
			if terr, ok := err.(types.Error); ok {
				a.report.Add(CodeTypeError, diag.SevError, terr.Fset.Position(terr.Pos),
					"%s", terr.Msg)
				continue
			}
			a.report.Add(CodeTypeError, diag.SevError, token.Position{}, "%s: %v", p.path, err)
		}
	}
}

// checked returns the packages whose deep (type-sensitive) passes may run.
func (a *analysis) checked() []*pkg {
	var out []*pkg
	for _, p := range a.mod.pkgs {
		if len(p.typeErrs) == 0 && p.tpkg != nil {
			out = append(out, p)
		}
	}
	return out
}

// --- shared type helpers -------------------------------------------------

// namedOf unwraps pointers and returns the named type of t, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// recvNamed returns the receiver's named type of fn, or nil for
// package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// calleeFunc resolves the function or method a call invokes, or nil for
// builtins, conversions, and calls of function-typed values.
func calleeFunc(p *pkg, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// fieldOwner reports the named type declaring the field selected by sel,
// or nil if sel is not a field selection.
func fieldOwner(p *pkg, sel *ast.SelectorExpr) *types.Named {
	s, ok := p.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return namedOf(s.Recv())
}

// isMuOp reports whether call is owner.<field>.Lock() or
// owner.<field>.Unlock() for a mutex field named field on the named type
// ownerName declared in ownerPkg.
func isMuOp(p *pkg, call *ast.CallExpr, ownerPkg *types.Package, ownerName, field string) (op string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock" {
		return "", false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != field {
		return "", false
	}
	owner := fieldOwner(p, inner)
	if owner == nil || owner.Obj().Name() != ownerName || owner.Obj().Pkg() != ownerPkg {
		return "", false
	}
	return sel.Sel.Name, true
}

// pkgPathOf returns the import path of fn's package, or "" for objects in
// the universe scope.
func pkgPathOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
