package archlint

import (
	"go/types"
)

// obsRingPass enforces AL014: the observability rings are written only by
// their designated feeders.
//
// The event log (evlog.Log) is fed exclusively from the control plane's
// already-serialized choke points — the reconfig supervisor (whose Poll is
// pollMu-serialized) and the top-level composition (the bus observer bridge
// and the transaction wrapper). An append from the bus, mh, or any other
// layer would put ring writes on paths with no ordering relationship to the
// topology changes the log narrates, and would hand lower layers a
// dependency on the observability vocabulary the DAG keeps above them.
//
// The window roller (timeseries.Roller.Roll) samples the registry's
// cumulative atomics and must do so from exactly one place: its own
// background loop. A roll from anywhere else would close windows early,
// skewing every per-window delta and quantile the health checker and the
// /timeseries surface report. Tests (excluded from analysis) may roll by
// hand to avoid waiting out the wall clock; production code may not.
func (a *analysis) obsRingPass() {
	for _, p := range a.checked() {
		for id, obj := range p.info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			switch {
			case fn.Name() == "Append" && pkgPathOf(fn) == a.rules.evlogPkg:
				if recv := recvNamed(fn); recv == nil || recv.Obj().Name() != "Log" {
					continue
				}
				if p.path == a.rules.evlogPkg || p.path == a.rules.reconfigPkg || p.path == a.mod.path {
					continue
				}
				a.diag(CodeObsRing, id.Pos(),
					"event-log append (evlog.Log.Append) outside its feeders: only the reconfig supervisor and the top-level observer bridge append, from their serialized control paths")
			case fn.Name() == "Roll" && pkgPathOf(fn) == a.rules.timeseriesPkg:
				if recv := recvNamed(fn); recv == nil || recv.Obj().Name() != "Roller" {
					continue
				}
				if p.path == a.rules.timeseriesPkg {
					continue
				}
				a.diag(CodeObsRing, id.Pos(),
					"window roll (timeseries.Roller.Roll) outside the roller's background loop: an out-of-band roll closes windows early and skews every per-window delta and quantile")
			}
		}
	}
}
