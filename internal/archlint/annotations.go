package archlint

import (
	"go/ast"
	"strings"
)

// Annotation contract. archlint understands three line-comment directives:
//
//	//archlint:hotpath
//	    In a function's doc comment: the function is a proven hot path and
//	    must stay free of allocating constructs (AL007).
//
//	//archlint:spawn <reason>
//	    On the line of a go statement or the line above: the spawn site is
//	    allowlisted; the reason documents who stops the goroutine (AL009).
//
//	//archlint:allow AL0xx [AL0yy ...]
//	    On a line or the line above it: suppresses the named diagnostics
//	    for that line. An escape hatch for reviewed exceptions; the
//	    repository itself carries none.
type annotations struct {
	// spawn maps file name -> lines carrying an //archlint:spawn directive.
	spawn map[string]map[int]bool
	// allow maps file name -> directive line -> suppressed codes.
	allow map[string]map[int]map[string]bool
}

// collectAnnotations scans every comment of every loaded file.
func collectAnnotations(m *module) *annotations {
	a := &annotations{
		spawn: map[string]map[int]bool{},
		allow: map[string]map[int]map[string]bool{},
	}
	for _, p := range m.pkgs {
		for _, f := range p.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//archlint:")
					if !ok {
						continue
					}
					pos := m.fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					switch fields[0] {
					case "spawn":
						lines := a.spawn[pos.Filename]
						if lines == nil {
							lines = map[int]bool{}
							a.spawn[pos.Filename] = lines
						}
						lines[pos.Line] = true
					case "allow":
						byLine := a.allow[pos.Filename]
						if byLine == nil {
							byLine = map[int]map[string]bool{}
							a.allow[pos.Filename] = byLine
						}
						codes := byLine[pos.Line]
						if codes == nil {
							codes = map[string]bool{}
							byLine[pos.Line] = codes
						}
						for _, code := range fields[1:] {
							codes[code] = true
						}
					}
				}
			}
		}
	}
	return a
}

// spawnAllowed reports whether a go statement at the given line carries a
// spawn directive on its own line or the line above.
func (a *annotations) spawnAllowed(file string, line int) bool {
	lines := a.spawn[file]
	return lines != nil && (lines[line] || lines[line-1])
}

// allowed reports whether an //archlint:allow directive at the diagnostic's
// line or the line above suppresses the code.
func (a *annotations) allowed(file string, line int, code string) bool {
	byLine := a.allow[file]
	if byLine == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		if codes := byLine[l]; codes != nil && codes[code] {
			return true
		}
	}
	return false
}

// isHotpath reports whether fd's doc comment carries the hotpath directive.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//archlint:hotpath" || strings.HasPrefix(c.Text, "//archlint:hotpath ") {
			return true
		}
	}
	return false
}
