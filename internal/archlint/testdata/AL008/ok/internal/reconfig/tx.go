package reconfig

// GoodTx journals an inverse for its mutation, commits, then runs the
// sanctioned destructive tail.
func GoodTx(p *Primitives) error {
	j := &journal{}
	if err := p.AddObj("clone"); err != nil {
		return err
	}
	j.record("delete_clone", func() error { return nil })
	j.discard()
	if _, err := p.DrainQueue("old.in"); err != nil {
		return err
	}
	return nil
}
