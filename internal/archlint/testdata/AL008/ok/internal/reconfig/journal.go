package reconfig

// journal collects compensating inverses for rollback.
type journal struct{ entries []entry }

type entry struct {
	action string
	undo   func() error
}

// record appends a compensating inverse.
func (j *journal) record(action string, undo func() error) {
	j.entries = append(j.entries, entry{action, undo})
}

// discard marks the commit point: rollback is off the table.
func (j *journal) discard() { j.entries = nil }
