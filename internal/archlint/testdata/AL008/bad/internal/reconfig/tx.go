package reconfig

// BadTx mutates the topology without journaling a compensating inverse,
// so an abort after the mutation has nothing to roll back with.
func BadTx(p *Primitives) error {
	j := &journal{}
	if err := p.AddObj("clone"); err != nil {
		return err
	}
	j.discard()
	return nil
}
