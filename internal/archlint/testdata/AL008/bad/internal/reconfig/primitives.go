package reconfig

// Primitives is the topology-mutation facade.
type Primitives struct{}

// AddObj creates an instance.
func (p *Primitives) AddObj(name string) error { return nil }

// DrainQueue discards queued messages.
func (p *Primitives) DrainQueue(name string) (int, error) { return 0, nil }
