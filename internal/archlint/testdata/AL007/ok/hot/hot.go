package hot

// Queue grows by amortized self-append.
type Queue struct{ items []int }

// Push is a clean hot path: one self-append and arithmetic.
//
//archlint:hotpath
func (q *Queue) Push(n int) int {
	q.items = append(q.items, n)
	return len(q.items)
}
