package hot

import "fmt"

// sink is an interface-typed destination: storing a concrete value into it
// boxes the value.
var sink any

// Bad is annotated as a hot path but allocates seven ways: a fmt call, make,
// a non-amortized append, a capturing closure, an implicit interface
// conversion, string concatenation, and a byte-slice conversion.
//
//archlint:hotpath
func Bad(xs []int, n int, name string) string {
	s := fmt.Sprint(n)
	buf := make([]byte, n)
	xs = append(xs, n)
	ys := append(xs, n)
	_ = ys
	f := func() int { return n }
	_ = f
	sink = n
	return s + name + string(buf)
}
