package worker

// Start leaks an unannotated goroutine.
func Start(fn func()) {
	go fn()
}
