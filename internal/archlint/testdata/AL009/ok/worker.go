package worker

// Start documents its spawn site.
func Start(fn func()) {
	go fn() //archlint:spawn worker body; caller owns the lifecycle
}
