// Package repro is the top-level composition: its observer bridge is the
// sanctioned path from bus events into the structured event log.
package repro

import "repro/internal/telemetry/evlog"

// App bridges bus observer callbacks into the event log.
type App struct{ events *evlog.Log }

func (a *App) bridgeBusEvent(kind string) {
	a.events.Append(evlog.Record{Source: "bus", Kind: kind})
}
