package timeseries

// Roller owns the window ring.
type Roller struct{ rolled int }

// Roll closes the current window.
func (r *Roller) Roll() { r.rolled++ }

// loop is the background roller: the one production call site of Roll.
func (r *Roller) loop(ticks int) {
	for i := 0; i < ticks; i++ {
		r.Roll()
	}
}
