package evlog

// Record is one structured event.
type Record struct {
	Source string
	Kind   string
}

// Log is the bounded event ring.
type Log struct{ n int }

// Append publishes one record.
func (l *Log) Append(r Record) { l.n++ }

// seed appends from inside the package itself, which is always legal.
func seed(l *Log) {
	l.Append(Record{Source: "evlog", Kind: "seed"})
}
