package reconfig

import "repro/internal/telemetry/evlog"

// Supervisor narrates detections and recoveries into the event log from
// its serialized poll path — a sanctioned feeder.
type Supervisor struct{ events *evlog.Log }

func (s *Supervisor) event(kind string) {
	s.events.Append(evlog.Record{Source: "supervisor", Kind: kind})
}
