package bus

import "repro/internal/telemetry/evlog"

// Mentioning l.Append() in a comment is fine; so is the string below.
var doc = "l.Append()"

// Publish appends from the bus — a layer with no ordering relationship to
// the topology changes the log narrates. Events reach the log through the
// top-level observer bridge, never directly from here.
func Publish(l *evlog.Log, kind string) {
	l.Append(evlog.Record{Source: "bus", Kind: kind})
}
