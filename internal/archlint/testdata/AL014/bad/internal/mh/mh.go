package mh

import "repro/internal/telemetry/timeseries"

// Tick rolls the window ring from the module runtime — an out-of-band roll
// closes windows early and skews every per-window delta the health checker
// reads. Only the roller's own background loop rolls.
func Tick(r *timeseries.Roller) {
	r.Roll()
}
