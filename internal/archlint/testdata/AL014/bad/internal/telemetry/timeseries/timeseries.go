package timeseries

// Roller owns the window ring.
type Roller struct{ rolled int }

// Roll closes the current window.
func (r *Roller) Roll() { r.rolled++ }
