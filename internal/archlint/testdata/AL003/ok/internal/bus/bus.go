package bus

import "sync"

// Bus owns the control-plane writer lock.
type Bus struct{ mu sync.Mutex }

// Reset holds the lock from inside bus.go, where the facade owns it.
func Reset(b *Bus) {
	b.mu.Lock()
	b.mu.Unlock()
}
