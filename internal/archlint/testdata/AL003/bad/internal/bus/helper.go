package bus

// Reset touches the control-plane lock from outside the facade.
func Reset(b *Bus) {
	b.mu.Lock()
	b.mu.Unlock()
}
