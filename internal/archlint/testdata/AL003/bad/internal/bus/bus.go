package bus

import "sync"

// Bus owns the control-plane writer lock.
type Bus struct{ mu sync.Mutex }
