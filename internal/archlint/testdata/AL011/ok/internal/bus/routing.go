package bus

import "errors"

// routingTable is one immutable snapshot.
type routingTable struct{ version uint64 }

// errStaleRoute refuses a push resolved from a fenced snapshot.
var errStaleRoute = errors.New("bus: stale route")
