package bus

// msgQueue is a per-interface message queue.
type msgQueue struct{ stale uint64 }

// refuse uses only the sanctioned stale-route sentinel from routing.
func (q *msgQueue) refuse() error { return errStaleRoute }
