package bus

import "errors"

// routingTable is one immutable snapshot.
type routingTable struct{ version uint64 }

// errStaleRoute refuses a push resolved from a fenced snapshot.
var errStaleRoute = errors.New("bus: stale route")

// fenceAll reaches up into the queueing layer: routing may not know
// queues exist.
func fenceAll(qs []*msgQueue) {
	for _, q := range qs {
		q.stale = 1
	}
}
