package bus

// msgQueue is a per-interface message queue.
type msgQueue struct{ stale uint64 }

// fence reads routing internals beyond the sanctioned errStaleRoute
// sentinel.
func (q *msgQueue) fence(rt *routingTable) error {
	q.stale = rt.version
	return errStaleRoute
}
