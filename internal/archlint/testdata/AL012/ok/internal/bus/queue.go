package bus

import "repro/internal/replay"

// msgQueue owns delivery; record is the consumer-drain hook, called as a
// message leaves the ring. Slot-claim order is delivery order there, which
// is what makes the recorded per-queue sequence the true total order.
type msgQueue struct{ rec *replay.QueueLog }

type qitem struct{ data []byte }

func (q *msgQueue) record(it qitem) {
	q.rec.Append("src", it.data)
}

func (q *msgQueue) drain() qitem {
	it := qitem{data: []byte("m")}
	q.record(it)
	return it
}
