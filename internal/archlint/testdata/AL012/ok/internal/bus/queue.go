package bus

import "repro/internal/replay"

// msgQueue owns delivery; the record hook runs under its lock, which is
// what makes the recorded per-queue sequence the true delivery order.
type msgQueue struct{ rec *replay.QueueLog }

func (q *msgQueue) push(data []byte) {
	q.rec.Append("src", data)
}
