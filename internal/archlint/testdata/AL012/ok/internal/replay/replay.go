package replay

// QueueLog is a per-queue recording handle.
type QueueLog struct{ n int }

// Append records one delivered message.
func (q *QueueLog) Append(from string, data []byte) { q.n++ }
