package bus

import "repro/internal/replay"

// msgQueue records from push — the producer side. The right file, but the
// wrong end of the ring: a producer-side append orders records by claim
// attempt, not by delivery, so it must live in the consumer's record hook.
type msgQueue struct{ rec *replay.QueueLog }

func (q *msgQueue) push(data []byte) {
	q.rec.Append("src", data)
}
