package bus

import "repro/internal/replay"

// Record appends from the transport file — the right package but the
// wrong layer of it: only queue.go records, inside push.
func Record(q *replay.QueueLog, data []byte) {
	q.Append("attach", data)
}
