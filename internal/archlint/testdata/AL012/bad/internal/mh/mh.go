package mh

import "repro/internal/replay"

// Mentioning q.Append() in a comment is fine; so is the string below.
var doc = "q.Append()"

// Deliver records from the module runtime — recording belongs to the bus
// delivery layer, under the destination queue's lock, not here.
func Deliver(q *replay.QueueLog, data []byte) {
	q.Append("mh", data)
}
