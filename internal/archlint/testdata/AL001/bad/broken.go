package broken

// Pi is misdeclared: the initializer names an undefined identifier.
var Pi = tau
