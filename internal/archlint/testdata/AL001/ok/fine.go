package fine

// Pi is a well-typed constant.
const Pi = 3
