package bus

import (
	"sync"
	"time"
)

// Bus owns the control-plane writer lock.
type Bus struct{ mu sync.Mutex }

// Good signals without blocking under the lock and sleeps after releasing
// it.
func (b *Bus) Good(ch chan int) {
	b.mu.Lock()
	select {
	case ch <- 1:
	default:
	}
	b.mu.Unlock()
	time.Sleep(time.Millisecond)
}
