package bus

import (
	"sync"
	"time"
)

// Bus owns the control-plane writer lock.
type Bus struct{ mu sync.Mutex }

// Bad blocks while holding the writer lock: a send with no default, and a
// sleep.
func (b *Bus) Bad(ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch <- 1
	time.Sleep(time.Millisecond)
}
