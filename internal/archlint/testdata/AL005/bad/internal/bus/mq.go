package bus

import "sync"

// msgQueue is a per-interface message queue.
type msgQueue struct {
	mu  sync.Mutex
	bus *Bus
}

// inverted enters the writer lock while holding the queue lock.
func (q *msgQueue) inverted() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.bus.edit(func() {})
}
