package bus

import "sync"

// Bus owns the control-plane writer lock.
type Bus struct{ mu sync.Mutex }

// edit runs fn under the writer lock.
func (b *Bus) edit(fn func()) {
	b.mu.Lock()
	fn()
	b.mu.Unlock()
}
