package bus

import "sync"

// msgQueue is a per-interface message queue.
type msgQueue struct {
	mu  sync.Mutex
	bus *Bus
}

// ordered releases the queue lock before entering the writer lock.
func (q *msgQueue) ordered() {
	q.mu.Lock()
	q.mu.Unlock()
	q.bus.edit(func() {})
}
