package bus

// Peek reaches into a slot from the transport file — ring internals are
// queue.go's private vocabulary.
func Peek(q *msgQueue) []byte {
	return q.slots[0].msg
}

// Fenced reads the fence word from the transport file.
func Fenced(q *msgQueue) uint64 {
	return q.fence.Load()
}

// Stop fences the queue from the transport file: only the routing layer
// (bus.go, group.go) detaches queues.
func Stop(q *msgQueue) {
	q.detach(9)
}
