package bus

import "sync/atomic"

type qslot struct {
	state atomic.Uint32
	msg   []byte
}

type msgQueue struct {
	fence atomic.Uint64
	slots [4]qslot
}

// push publishes before writing the payload: the consumer can observe the
// flag and read a torn message.
func (q *msgQueue) push(m []byte) {
	s := &q.slots[0]
	s.state.Store(1)
	s.msg = m
}

// claim CASes the publication flag — but a claimed slot has exactly one
// owner, so the flag is only ever Stored.
func (q *msgQueue) claim() bool {
	s := &q.slots[1]
	return s.state.CompareAndSwap(0, 1)
}

// refuse raises the fence outside detach, diverting traffic to the slow
// path with no topology change behind it.
func (q *msgQueue) refuse(version uint64) {
	q.fence.Store(version)
}

func (q *msgQueue) detach(version uint64) {
	q.fence.Store(version)
}
