package bus

import "sync/atomic"

// qslot is one message cell of the ring: state is the publication flag and
// is the slot's last touch — the consumer reads msg only after seeing it.
type qslot struct {
	state atomic.Uint32
	msg   []byte
	ver   uint64
}

// chunk is one fixed segment of slots with a producer claim cursor.
type chunk struct {
	tail  atomic.Uint64
	slots [4]qslot
}

// msgQueue is the lock-free ring; the fence word refuses routed pushes
// stamped with a topology version at or below it.
type msgQueue struct {
	prod  atomic.Pointer[chunk]
	fence atomic.Uint64
}

func (q *msgQueue) push(m []byte) {
	c := q.prod.Load()
	pos := c.tail.Add(1) - 1
	s := &c.slots[pos]
	s.msg = m
	s.state.Store(1) // publish last
}

func (q *msgQueue) pushRouted(m []byte, version uint64) bool {
	c := q.prod.Load()
	pos := c.tail.Add(1) - 1
	s := &c.slots[pos]
	if version <= q.fence.Load() {
		s.state.Store(2) // tombstone the claimed slot and refuse
		return false
	}
	s.msg = m
	s.ver = version
	s.state.Store(1)
	return true
}

// detach raises the fence; only the routing layer may call it.
func (q *msgQueue) detach(version uint64) {
	for {
		cur := q.fence.Load()
		if version <= cur || q.fence.CompareAndSwap(cur, version) {
			return
		}
	}
}
