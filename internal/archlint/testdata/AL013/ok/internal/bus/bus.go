package bus

// Rebind fences the queue as part of publishing a topology change — the
// one legal detach site outside group.go.
func Rebind(q *msgQueue, version uint64) {
	q.detach(version)
}
