package bus

import "repro/internal/telemetry/trace"

// Mentioning t.MintTrace() in a comment is fine; so is the string below.
var doc = "t.MintTrace()"

// Stamp advances the clock from inside the bus layer, where it belongs.
func Stamp(t *trace.Tracer, parent trace.Context) trace.Context {
	return t.Stamp(parent)
}
