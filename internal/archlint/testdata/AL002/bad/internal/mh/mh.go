package mh

import "repro/internal/telemetry/trace"

// Mentioning t.MintTrace() in a comment is fine; so is the string below.
var doc = "t.MintTrace()"

// Emit stamps outside the bus layer: the module runtime must carry
// contexts opaquely, never advance the clock itself.
func Emit(t *trace.Tracer, parent trace.Context) trace.Context {
	return t.Stamp(parent)
}
