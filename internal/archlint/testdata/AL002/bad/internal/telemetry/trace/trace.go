package trace

// Context is the causal identity a message carries.
type Context struct{ TraceID uint64 }

// Tracer mints and extends contexts.
type Tracer struct{ next uint64 }

// MintTrace opens a new causal chain.
func (t *Tracer) MintTrace() Context { t.next++; return Context{TraceID: t.next} }

// ChildSpan derives a span within parent's chain.
func (t *Tracer) ChildSpan(parent Context) Context { return parent }

// Stamp extends parent (or mints a root when parent is zero).
func (t *Tracer) Stamp(parent Context) Context { return parent }
