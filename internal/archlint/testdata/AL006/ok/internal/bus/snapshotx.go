package bus

// Version reads through an atomic load and treats the table as immutable.
func Version(b *Bus) uint64 {
	return b.routing.Load().version
}
