package bus

import "sync/atomic"

// Bus publishes routing snapshots copy-on-write.
type Bus struct{ routing atomic.Pointer[routingTable] }

// publish installs the successor snapshot from the sanctioned site.
func (b *Bus) publish(rt *routingTable) { b.routing.Store(rt) }
