package bus

// routingTable is one immutable snapshot.
type routingTable struct{ version uint64 }
