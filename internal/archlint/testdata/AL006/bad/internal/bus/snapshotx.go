package bus

// Version breaks the snapshot discipline three ways: aliasing the pointer
// cell, publishing outside bus.go, and mutating a published table.
func Version(b *Bus) uint64 {
	p := &b.routing
	_ = p
	b.routing.Store(&routingTable{})
	rt := b.routing.Load()
	rt.version = 7
	return rt.version
}
