package telemetry

import "repro/internal/bus"

// Probe makes telemetry depend on the bus it is supposed to measure.
func Probe() { bus.Ping() }
