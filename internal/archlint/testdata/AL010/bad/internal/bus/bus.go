package bus

// Ping is a bus entry point.
func Ping() {}
