package bus

import "repro/internal/telemetry"

// Ping depends downward on telemetry: the sanctioned direction.
func Ping() int { return telemetry.Count() }
