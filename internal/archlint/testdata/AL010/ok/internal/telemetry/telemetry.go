package telemetry

// Count is a leaf utility with no upward dependency.
func Count() int { return 0 }
