package archlint

import (
	"go/ast"
	"go/constant"
	"strings"
)

// topologyMutators are the calls that change the running configuration.
// Keyed by "Recv.Name"; the boolean is the owning package rule: true means
// the reconfig package's Primitives facade, false the bus itself.
var topologyMutators = map[string]bool{
	"Primitives.AddObj":     true,
	"Primitives.Rebind":     true,
	"Primitives.ChgObj":     true,
	"Primitives.DrainQueue": true,
	"Bus.AddInstance":       false,
	"Bus.DeleteInstance":    false,
	"Bus.AddBinding":        false,
	"Bus.DeleteBinding":     false,
	"Bus.Rebind":            false,
	"Bus.MoveQueue":         false,
	"Bus.DrainQueue":        false,
}

// journalPass enforces AL008: inside a reconfig transaction (a function of
// internal/reconfig whose name ends in Tx), every topology-mutating call
// must journal a compensating inverse. Concretely, a mutating call is
// legal only if a journal.record call follows within the next two sibling
// statements, or the transaction has already passed its commit point
// (journal.discard) — after which the remaining mutations are the
// sanctioned destructive tail that rollback must never undo.
//
// Function literals are exempt: they are the undo closures themselves and
// the abort helper. ChgObj with a constant "add" op is additive (its
// inverse is covered by the delete journaled for the clone) and exempt.
func (a *analysis) journalPass() {
	p := a.pkgByPath(a.rules.reconfigPkg)
	if p == nil {
		return
	}
	for _, f := range p.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasSuffix(fd.Name.Name, "Tx") {
				continue
			}
			a.checkTx(p, fd)
		}
	}
}

func (a *analysis) checkTx(p *pkg, fd *ast.FuncDecl) {
	discarded := false
	var walk func(stmts []ast.Stmt)
	walk = func(stmts []ast.Stmt) {
		for i, st := range stmts {
			if containsJournalCall(p, st, "discard") {
				discarded = true
			}
			if !discarded {
				for _, mc := range mutatingCalls(a, p, st) {
					if !recordNearby(p, stmts, i) {
						a.diag(CodeUnjournaled, mc.Pos(),
							"topology mutation %s in %s has no compensating journal.record within the next two statements and precedes the commit point",
							mutatorName(a, p, mc), fd.Name.Name)
					}
				}
			}
			for _, blk := range nestedStmtLists(st) {
				walk(blk)
			}
		}
	}
	walk(fd.Body.List)
}

// recordNearby reports a journal.record call in statements i..i+2.
func recordNearby(p *pkg, stmts []ast.Stmt, i int) bool {
	for j := i; j < len(stmts) && j <= i+2; j++ {
		if containsJournalCall(p, stmts[j], "record") {
			return true
		}
	}
	return false
}

// containsJournalCall scans st (skipping function literals) for a call of
// the named method on the reconfig journal type.
func containsJournalCall(p *pkg, st ast.Stmt, name string) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Name() != name {
			return true
		}
		if recv := recvNamed(fn); recv != nil && recv.Obj().Name() == "journal" && recv.Obj().Pkg() == p.tpkg {
			found = true
		}
		return true
	})
	return found
}

// mutatingCalls collects the topology-mutating calls in the shallow part
// of st: nested blocks are excluded (the recursive walk owns their sibling
// windows), function literals are exempt.
func mutatingCalls(a *analysis, p *pkg, st ast.Stmt) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(st, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.FuncLit, *ast.CaseClause, *ast.CommClause:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isTopologyMutator(a, p, call) {
			out = append(out, call)
		}
		return true
	})
	return out
}

func mutatorKey(a *analysis, p *pkg, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(p, call)
	if fn == nil {
		return "", false
	}
	recv := recvNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil {
		return "", false
	}
	key := recv.Obj().Name() + "." + fn.Name()
	wantReconfig, ok := topologyMutators[key]
	if !ok {
		return "", false
	}
	want := a.rules.busPkg
	if wantReconfig {
		want = a.rules.reconfigPkg
	}
	if recv.Obj().Pkg().Path() != want {
		return "", false
	}
	return key, true
}

func isTopologyMutator(a *analysis, p *pkg, call *ast.CallExpr) bool {
	key, ok := mutatorKey(a, p, call)
	if !ok {
		return false
	}
	// ChgObj is additive when its op argument is the constant "add": the
	// clone's journaled delete already compensates it.
	if strings.HasSuffix(key, ".ChgObj") && len(call.Args) > 0 {
		if tv, ok := p.info.Types[call.Args[len(call.Args)-1]]; ok && tv.Value != nil &&
			tv.Value.Kind() == constant.String && constant.StringVal(tv.Value) == "add" {
			return false
		}
	}
	return true
}

func mutatorName(a *analysis, p *pkg, call *ast.CallExpr) string {
	key, _ := mutatorKey(a, p, call)
	return key
}

// nestedStmtLists returns the statement lists nested one level inside st.
func nestedStmtLists(st ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := st.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			out = append(out, e.List)
		case *ast.IfStmt:
			out = append(out, []ast.Stmt{e})
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			out = append(out, c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			out = append(out, c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			out = append(out, c.(*ast.CommClause).Body)
		}
	case *ast.LabeledStmt:
		out = append(out, []ast.Stmt{s.Stmt})
	}
	return out
}
