package transform

import (
	"strings"
	"testing"
)

// TestInstrumentationGrowthBounded quantifies the Discussion's code-size
// observation ("reconfiguration points located in deeply-nested procedures
// or procedures that are called from many places increases the occurrence
// of reconfiguration flags in the source code"): instrumentation grows each
// prepared module by a bounded constant factor — one restore block per
// procedure and one capture block per reconfiguration-graph edge — never
// combinatorially.
func TestInstrumentationGrowthBounded(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"monitor-compute", computeSrc},
		{"dual-point", dualPointSrc},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := prepare(t, tc.src, Options{})
			gen, err := out.Source()
			if err != nil {
				t.Fatal(err)
			}
			origLines := len(strings.Split(strings.TrimSpace(tc.src), "\n"))
			genLines := len(strings.Split(strings.TrimSpace(gen), "\n"))
			growth := float64(genLines) / float64(origLines)
			t.Logf("%s: %d -> %d lines (%.2fx)", tc.name, origLines, genLines, growth)
			if growth > 4 {
				t.Errorf("instrumentation grew the module %.2fx (> 4x bound): flatten or weave regressed", growth)
			}
			// Flag tests appear exactly once per edge kind: one
			// CaptureStack test per call edge, one Reconfig test per
			// reconfiguration edge.
			callEdges, reconfEdges := 0, 0
			for _, e := range out.Graph.Edges {
				if e.IsReconfig() {
					reconfEdges++
				} else {
					callEdges++
				}
			}
			if got := strings.Count(gen, "if mh.CaptureStack()"); got != callEdges {
				t.Errorf("CaptureStack tests = %d, want one per call edge (%d)", got, callEdges)
			}
			if got := strings.Count(gen, "if mh.Reconfig()"); got != reconfEdges {
				t.Errorf("Reconfig tests = %d, want one per reconfiguration edge (%d)", got, reconfEdges)
			}
			if got := strings.Count(gen, "if mh.Restoring()"); got != len(out.Graph.Nodes) {
				t.Errorf("restore blocks = %d, want one per instrumented procedure (%d)", got, len(out.Graph.Nodes))
			}
		})
	}
}
