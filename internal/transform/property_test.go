package transform

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/mh"
)

// genWorkerModule builds a random module: main reads an int request, runs
// it through a randomly generated pure computation that contains a
// reconfiguration point, and writes the result. The generated control flow
// exercises if/for/switch/break/continue through the whole pipeline
// (flatten + hoist + weave).
func genWorkerModule(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var body strings.Builder
	vars := []string{"x", "acc"}
	expr := func(depth int) string {
		var gen func(d int) string
		gen = func(d int) string {
			if d <= 0 || r.Intn(3) == 0 {
				if r.Intn(2) == 0 {
					return vars[r.Intn(len(vars))]
				}
				return fmt.Sprintf("%d", r.Intn(9)+1)
			}
			op := []string{"+", "-", "*"}[r.Intn(3)]
			return fmt.Sprintf("((%s) %s (%s))", gen(d-1), op, gen(d-1))
		}
		return gen(depth)
	}
	var stmt func(ind, depth int)
	stmts := func(n, ind, depth int) {
		for i := 0; i < n; i++ {
			stmt(ind, depth)
		}
	}
	indent := func(n int) {
		for i := 0; i < n; i++ {
			body.WriteByte('\t')
		}
	}
	loopVar := 0
	inLoop := 0
	stmt = func(ind, depth int) {
		choices := 4
		if inLoop > 0 {
			choices = 5
		}
		if depth <= 0 {
			choices = 2
		}
		switch r.Intn(choices) {
		case 0:
			indent(ind)
			fmt.Fprintf(&body, "acc = ((%s) %% 100003)\n", expr(2))
		case 1:
			indent(ind)
			fmt.Fprintf(&body, "x += %s\n", expr(1))
		case 2:
			indent(ind)
			fmt.Fprintf(&body, "if (%s) %% 2 == 0 {\n", expr(1))
			stmts(1+r.Intn(2), ind+1, depth-1)
			indent(ind)
			body.WriteString("} else {\n")
			stmts(1, ind+1, depth-1)
			indent(ind)
			body.WriteString("}\n")
		case 3:
			loopVar++
			v := fmt.Sprintf("i%d", loopVar)
			indent(ind)
			fmt.Fprintf(&body, "for %s := 0; %s < %d; %s++ {\n", v, v, r.Intn(4)+1, v)
			vars = append(vars, v)
			inLoop++
			stmts(1+r.Intn(2), ind+1, depth-1)
			inLoop--
			vars = vars[:len(vars)-1]
			indent(ind)
			body.WriteString("}\n")
		case 4:
			indent(ind)
			fmt.Fprintf(&body, "if (%s) %% 7 == 0 {\n", expr(1))
			indent(ind + 1)
			if r.Intn(2) == 0 {
				body.WriteString("break\n")
			} else {
				body.WriteString("continue\n")
			}
			indent(ind)
			body.WriteString("}\n")
		}
	}
	var pre, post strings.Builder
	tmp := body
	body = pre
	stmts(2+r.Intn(3), 1, 3)
	pre = body
	body = post
	stmts(2+r.Intn(3), 1, 3)
	post = body
	body = tmp

	return fmt.Sprintf(`package worker

func main() {
	var x int
	mh.Init()
	for {
		if mh.QueryIfMsgs("in") {
			mh.Read("in", &x)
			r := step(x)
			mh.Write("in", r)
		}
		mh.Sleep(1)
	}
}

func step(x int) int {
	acc := 0
%s	mh.ReconfigPoint("R")
%s	return acc + x
}
`, pre.String(), post.String())
}

// runWorker serves the request stream through prog and returns the
// responses.
func runWorker(t *testing.T, prog *lang.Program, info *lang.Info, inputs []int) []int {
	t.Helper()
	b := bus.New()
	if err := b.AddInstance(bus.InstanceSpec{
		Name: "w", Module: "worker",
		Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.InOut}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(bus.InstanceSpec{
		Name: "drv", Interfaces: []bus.IfaceSpec{{Name: "io", Dir: bus.InOut}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBinding(bus.Endpoint{Instance: "drv", Interface: "io"}, bus.Endpoint{Instance: "w", Interface: "in"}); err != nil {
		t.Fatal(err)
	}
	drv, err := b.Attach("drv")
	if err != nil {
		t.Fatal(err)
	}
	port, err := b.Attach("w")
	if err != nil {
		t.Fatal(err)
	}
	rt := mh.New(port, mh.WithSleepUnit(time.Microsecond))
	in := interp.New(prog, info, rt, interp.WithMaxSteps(50_000_000))
	done := make(chan error, 1)
	go func() {
		_, err := in.Run()
		done <- err
	}()

	drt := mh.New(drv)
	drt.Init()
	out := make([]int, 0, len(inputs))
	for _, x := range inputs {
		drt.Write("io", x)
		var r int
		drt.Read("io", &r)
		if err := drt.Err(); err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	if err := b.DeleteInstance("w"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("module error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("module did not stop")
	}
	return out
}

// TestPipelineEquivalenceProperty: for randomly generated modules, the
// fully transformed program (flatten + hoist + weave, under each capture
// mode) serves exactly the same responses as the original when no
// reconfiguration is requested.
func TestPipelineEquivalenceProperty(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	inputs := []int{0, 1, 7, 42, 1001, -13}
	for seed := 0; seed < seeds; seed++ {
		src := genWorkerModule(int64(seed))
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog, err := lang.ParseSource("worker.go", src)
			if err != nil {
				t.Fatalf("%v\n%s", err, src)
			}
			info, err := lang.Check(prog)
			if err != nil {
				t.Fatalf("%v\n%s", err, src)
			}
			want := runWorker(t, prog, info, inputs)

			for _, mode := range []CaptureMode{CaptureAll, CaptureLive} {
				out, err := PrepareSource("worker.go", src, Options{Mode: mode})
				if err != nil {
					t.Fatalf("prepare (%v): %v\n%s", mode, err, src)
				}
				got := runWorker(t, out.Prog, out.Info, inputs)
				if !reflect.DeepEqual(got, want) {
					gen, _ := out.Source()
					t.Fatalf("mode %v: responses %v, want %v\noriginal:\n%s\ninstrumented:\n%s",
						mode, got, want, src, gen)
				}
			}
		})
	}
}

// TestMigrationSweep parametrizes the Section 2 scenario over recursion
// depth and interrupt position: for every (n, k) with 0 <= k < n, the
// module is interrupted after consuming k of n sensor values and the final
// average must be exact. This sweeps capture depths 2..n+1 and both
// resume-edge dispatch paths.
func TestMigrationSweep(t *testing.T) {
	depths := []int{2, 3, 5, 8}
	if testing.Short() {
		depths = []int{2}
	}
	out := prepare(t, computeSrc, Options{Mode: CaptureLive})
	// k values are consumed before the interrupt; k <= n-2 keeps the
	// interrupt strictly mid-recursion (at k == n-1 the last read pops the
	// whole call before the flag is tested again, so the capture waits for
	// a later point execution — covered by TestInstrumentedIdlePath).
	for _, n := range depths {
		for k := 0; k <= n-2; k++ {
			t.Run(fmt.Sprintf("n%d-k%d", n, k), func(t *testing.T) {
				h := newHarness(t)
				_, done := h.start(out, "compute")

				h.sendInt(h.disp, "temper", n)
				// Feed k values; the module consumes them and blocks on
				// value k+1.
				for i := 0; i < k; i++ {
					h.sendInt(h.sens, "out", 10*(i+1))
				}
				time.Sleep(50 * time.Millisecond)
				if err := h.b.SignalReconfig("compute"); err != nil {
					t.Fatal(err)
				}
				// Unblock one read; the next reconfiguration point tests
				// the flag and the capture happens.
				h.sendInt(h.sens, "out", 10*(k+1))

				owner, err := h.b.AwaitDivulged("compute", 5*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				select {
				case err := <-done:
					if err != nil {
						t.Fatal(err)
					}
				case <-time.After(5 * time.Second):
					t.Fatal("module did not exit")
				}

				st, err := h.c.DecodeState(owner.Data())
				if err != nil {
					t.Fatal(err)
				}
				// After consuming k+1 values, recursion levels 1..k+1
				// have popped; the capture triggers at level k+2, leaving
				// compute frames for levels k+2..n plus main: n-k frames.
				wantDepth := n - k
				if st.Depth() != wantDepth {
					t.Fatalf("depth = %d, want %d\n%s", st.Depth(), wantDepth, st)
				}

				h.migrate(owner)
				_, done2 := h.start(out, "compute2")
				for i := k + 1; i < n; i++ {
					h.sendInt(h.sens, "out", 10*(i+1))
				}
				want := 0.0
				for i := 1; i <= n; i++ {
					want += float64(10*i) / float64(n)
				}
				if got := h.readFloat(); got != want {
					t.Errorf("answer = %g, want %g", got, want)
				}
				h.b.DeleteInstance("compute2")
				select {
				case <-done2:
				case <-time.After(5 * time.Second):
					t.Fatal("clone did not stop")
				}
			})
		}
	}
}
