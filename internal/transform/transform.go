// Package transform implements the paper's contribution: the automatic
// source transformation that prepares a module for participation in dynamic
// reconfiguration (Section 3).
//
// Given a module program with programmer-designated reconfiguration points
// (mh.ReconfigPoint markers), Prepare:
//
//  1. builds the static call graph and the reconfiguration graph
//     (internal/callgraph) — only procedures on a path from main to a
//     reconfiguration point are instrumented;
//  2. flattens those procedures (internal/flatten) so every resume label is
//     at the top level, making the restore-block gotos legal Go;
//  3. hoists call arguments that could fault when re-evaluated into
//     captured temporaries — this reproduction's stronger version of the
//     paper's dummy-argument substitution: the re-issued call sees the
//     *original* argument values, restored from the frame, instead of
//     dummies;
//  4. chooses each procedure's capture set (all locals, the liveness-
//     trimmed union, or the specification-supplied lists);
//  5. weaves one restore block per procedure (Figure 8) and one capture
//     block per reconfiguration-graph edge (Figure 7), with resume labels
//     Li at call sites and the point label at each reconfiguration point;
//  6. prunes unused labels and reloads, so the output provably parses,
//     checks, and remains in the module subset.
//
// The output runs under the interpreter and compiles as real Go against
// the mh runtime (cmd/mhgen emits a standalone package).
package transform

import (
	"fmt"
	"go/ast"
	"sort"

	"repro/internal/callgraph"
	"repro/internal/flatten"
	"repro/internal/lang"
	"repro/internal/liveness"
)

// CaptureMode selects how per-procedure capture sets are derived.
type CaptureMode int

const (
	// CaptureAll captures every parameter and local of an instrumented
	// procedure — the conservative default, "the relevant variables are
	// the parameters and local variables of a procedure".
	CaptureAll CaptureMode = iota + 1
	// CaptureLive trims the set to the union, over the procedure's
	// reconfiguration-graph edges, of the variables live at the resume
	// point (the paper's suggested data-flow analysis, implemented).
	CaptureLive
	// CaptureSpec uses the variable lists declared with each
	// reconfiguration point in the configuration specification (Figure 2)
	// for the procedures that contain points, and all locals elsewhere.
	CaptureSpec
)

// String names the mode.
func (m CaptureMode) String() string {
	switch m {
	case CaptureAll:
		return "all"
	case CaptureLive:
		return "live"
	case CaptureSpec:
		return "spec"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configures Prepare.
type Options struct {
	Mode CaptureMode
	// PointVars supplies the per-point variable lists for CaptureSpec,
	// keyed by point label (from mil.ReconfigPoint.Vars).
	PointVars map[string][]string
}

// CapturedVar is one variable of a procedure's capture set.
type CapturedVar struct {
	Name    string
	Type    lang.Type
	Pointer bool // pointer parameter: captured as *name, restored through name
}

// FuncReport describes the instrumentation of one procedure.
type FuncReport struct {
	Name     string
	Captured []CapturedVar
	Format   string // mh_capture/mh_restore format string (location first)
	Edges    []int  // reconfiguration-graph edge numbers owned by this node
}

// Output is the result of Prepare.
type Output struct {
	// Prog and Info describe the instrumented program (reloaded: parsed
	// and checked from the printed output).
	Prog *lang.Program
	Info *lang.Info
	// Files holds the formatted instrumented sources.
	Files map[string]string
	// Graph is the reconfiguration graph the instrumentation follows
	// (built on the flattened program; edge numbers match the integers in
	// the woven mh.Capture calls).
	Graph *callgraph.RGraph
	// Funcs reports per-procedure capture sets, keyed by name.
	Funcs map[string]*FuncReport
	// StaticDOT and ReconfigDOT are Graphviz renderings (Figure 6).
	StaticDOT   string
	ReconfigDOT string
}

// Prepare transforms a module program for reconfiguration participation.
func Prepare(sources map[string]string, opts Options) (*Output, error) {
	if opts.Mode == 0 {
		opts.Mode = CaptureAll
	}
	prog, err := lang.ParseFiles(sources)
	if err != nil {
		return nil, err
	}
	info, err := lang.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("transform: %w", err)
	}

	// The original graphs determine the node set and provide the
	// Figure 6 artifacts on the untouched source.
	g0 := callgraph.Build(prog)
	rg0, err := callgraph.BuildReconfig(g0, info)
	if err != nil {
		return nil, fmt.Errorf("transform: %w", err)
	}
	staticDOT := g0.DOT()
	reconfigDOT := rg0.DOT()
	nodeSet := map[string]bool{}
	for _, n := range rg0.Nodes {
		nodeSet[n] = true
	}

	// Flatten every instrumented procedure.
	for _, name := range rg0.Nodes {
		if _, err := flatten.Function(prog, info, name); err != nil {
			return nil, fmt.Errorf("transform: %w", err)
		}
	}
	prog, info, err = lang.Reload(prog)
	if err != nil {
		return nil, fmt.Errorf("transform: after flatten: %w", err)
	}

	// Hoist unsafe arguments of instrumented calls into captured temps.
	if err := hoistUnsafeArgs(prog, info, nodeSet); err != nil {
		return nil, err
	}
	prog, info, err = lang.Reload(prog)
	if err != nil {
		return nil, fmt.Errorf("transform: after hoisting: %w", err)
	}

	// Rebuild the graph on the flattened program; its edge numbers are
	// the integers woven into the capture/restore blocks.
	g := callgraph.Build(prog)
	rg, err := callgraph.BuildReconfig(g, info)
	if err != nil {
		return nil, fmt.Errorf("transform: %w", err)
	}
	if err := sameNodes(rg0, rg); err != nil {
		return nil, err
	}

	// Per-procedure liveness (capture-set trimming and pointer-local
	// validation).
	live := map[string]*liveness.Analysis{}
	for _, name := range rg.Nodes {
		a, err := liveness.Analyze(prog, info, name)
		if err != nil {
			return nil, fmt.Errorf("transform: %w", err)
		}
		live[name] = a
	}

	out := &Output{
		Graph:       rg,
		Funcs:       map[string]*FuncReport{},
		StaticDOT:   staticDOT,
		ReconfigDOT: reconfigDOT,
	}
	w := &weaver{prog: prog, info: info, rg: rg, live: live, opts: opts, out: out}
	for _, name := range rg.Nodes {
		if err := w.weaveFunc(name); err != nil {
			return nil, err
		}
	}

	// Prune generated labels nothing targets; keep the resume labels.
	for _, name := range rg.Nodes {
		flatten.PruneLabels(prog.Funcs[name].Decl, w.keepLabels[name])
	}

	files, err := lang.FormatProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("transform: format output: %w", err)
	}
	nprog, ninfo, err := lang.Reload(prog)
	if err != nil {
		return nil, fmt.Errorf("transform: output does not re-check: %w", err)
	}
	out.Prog = nprog
	out.Info = ninfo
	out.Files = files
	return out, nil
}

func sameNodes(a, b *callgraph.RGraph) error {
	if len(a.Nodes) != len(b.Nodes) {
		return fmt.Errorf("transform: node set changed across flattening (%v vs %v)", a.Nodes, b.Nodes)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return fmt.Errorf("transform: node set changed across flattening (%v vs %v)", a.Nodes, b.Nodes)
		}
	}
	return nil
}

// PrepareSource is Prepare for a single-file module.
func PrepareSource(name, src string, opts Options) (*Output, error) {
	return Prepare(map[string]string{name: src}, opts)
}

// Source returns the single instrumented source file (convenience for
// single-file modules).
func (o *Output) Source() (string, error) {
	if len(o.Files) != 1 {
		return "", fmt.Errorf("transform: output has %d files", len(o.Files))
	}
	for _, src := range o.Files {
		return src, nil
	}
	return "", nil
}

// ReportString summarizes the instrumentation deterministically.
func (o *Output) ReportString() string {
	names := make([]string, 0, len(o.Funcs))
	for n := range o.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		fr := o.Funcs[n]
		s += fmt.Sprintf("func %s: format %q, edges %v, captures", n, fr.Format, fr.Edges)
		for _, cv := range fr.Captured {
			if cv.Pointer {
				s += " *" + cv.Name
			} else {
				s += " " + cv.Name
			}
		}
		s += "\n"
	}
	return s
}

// collectLabels returns every label declared in fn.
func collectLabels(fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok {
			out[ls.Label.Name] = true
		}
		return true
	})
	return out
}
