package transform

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/codec"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/mh"
	"repro/internal/state"
)

// computeSrc is Figure 3 in the module language.
const computeSrc = `package compute

func main() {
	var n int
	var response float64
	mh.Init()
	for {
		for mh.QueryIfMsgs("display") {
			mh.Read("display", &n)
			compute(n, n, &response)
			mh.Write("display", response)
		}
		if mh.QueryIfMsgs("sensor") {
			compute(1, 1, &response)
		}
		mh.Sleep(2)
	}
}

func compute(num int, n int, rp *float64) {
	var temper int
	if n <= 0 {
		*rp = 0.0
		return
	}
	compute(num, n-1, rp)
	mh.ReconfigPoint("R")
	mh.Read("sensor", &temper)
	*rp = *rp + float64(temper)/float64(num)
}
`

func prepare(t *testing.T, src string, opts Options) *Output {
	t.Helper()
	out, err := PrepareSource("mod.go", src, opts)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return out
}

// TestInstrumentMonitorCompute reproduces experiment F4: the instrumented
// compute module has the Figure 4 structure.
func TestInstrumentMonitorCompute(t *testing.T) {
	out := prepare(t, computeSrc, Options{})
	src, err := out.Source()
	if err != nil {
		t.Fatal(err)
	}

	// Figure 4's structural landmarks, in the generated Go dialect.
	landmarks := []string{
		`if mh.Status() == "clone"`, // clone check in main
		"mh.Decode()",
		`mh.Restore("main", "liF", &mhLoc, &n, &response)`,
		"if mhLoc == 1 {",
		"goto L1",
		"if mhLoc == 2 {",
		"goto L2",
		`mh.Capture("main", "liF", 1, n, response)`,
		`mh.Capture("main", "liF", 2, n, response)`,
		"mh.Encode()", // main's capture blocks divulge
		`mh.Restore("compute", "liiFi", &mhLoc, &num, &n, rp, &temper)`,
		"goto L3",
		"mh.SetRestoring(false)",
		"mh.InstallSignalHandler()",
		"goto R",
		`mh.Capture("compute", "liiFi", 3, num, n, *rp, temper)`,
		"mh.ClearReconfig()",
		"mh.SetCaptureStack(true)",
		`mh.Capture("compute", "liiFi", 4, num, n, *rp, temper)`,
	}
	for _, want := range landmarks {
		if !strings.Contains(src, want) {
			t.Errorf("instrumented source missing %q:\n%s", want, src)
		}
	}
	// The marker is gone; the R label remains.
	if strings.Contains(src, "ReconfigPoint") {
		t.Error("marker call survived instrumentation")
	}
	if !strings.Contains(src, "R:") {
		t.Error("reconfiguration label missing")
	}
	// compute's capture blocks do not encode (only main's do).
	computePart := src[strings.Index(src, "func compute"):]
	if strings.Contains(computePart, "mh.Encode") {
		t.Error("non-main procedure calls mh.Encode")
	}

	// Report: edges 1,2 belong to main; 3,4 to compute — the integers of
	// Figure 4.
	if got := out.Funcs["main"].Edges; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("main edges = %v", got)
	}
	if got := out.Funcs["compute"].Edges; len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("compute edges = %v", got)
	}
	if !strings.Contains(out.ReconfigDOT, `"compute" -> "reconfig"`) {
		t.Error("reconfiguration DOT missing point edge")
	}
}

// TestCaptureBlockShape reproduces experiment F7: both capture block forms.
func TestCaptureBlockShape(t *testing.T) {
	out := prepare(t, computeSrc, Options{})
	src, _ := out.Source()

	// Call-edge capture block: triggered by CaptureStack, returns after
	// capturing.
	callBlock := "if mh.CaptureStack() {\n\t\tmh.Capture(\"compute\", \"liiFi\", 3, num, n, *rp, temper)\n\t\treturn\n\t}"
	if !strings.Contains(src, callBlock) {
		t.Errorf("call-edge capture block malformed; want\n%s\nin\n%s", callBlock, src)
	}
	// Reconfiguration-edge capture block: triggered by Reconfig, clears
	// it, raises CaptureStack, captures, returns.
	reconfBlock := "if mh.Reconfig() {\n\t\tmh.ClearReconfig()\n\t\tmh.SetCaptureStack(true)\n\t\tmh.Capture(\"compute\", \"liiFi\", 4, num, n, *rp, temper)\n\t\treturn\n\t}"
	if !strings.Contains(src, reconfBlock) {
		t.Errorf("reconfiguration capture block malformed; want\n%s\nin\n%s", reconfBlock, src)
	}
}

// TestRestoreBlockShape reproduces experiment F8: the restore block with
// per-edge dispatch, including the reconfiguration-edge variant.
func TestRestoreBlockShape(t *testing.T) {
	out := prepare(t, computeSrc, Options{})
	src, _ := out.Source()
	restore := "if mh.Restoring() {\n\t\tmh.Restore(\"compute\", \"liiFi\", &mhLoc, &num, &n, rp, &temper)\n\t\tif mhLoc == 3 {\n\t\t\tgoto L3\n\t\t}\n\t\tif mhLoc == 4 {\n\t\t\tmh.SetRestoring(false)\n\t\t\tmh.InstallSignalHandler()\n\t\t\tgoto R\n\t\t}\n\t}"
	if !strings.Contains(src, restore) {
		t.Errorf("restore block malformed; want\n%s\nin\n%s", restore, src)
	}
}

func TestCaptureModes(t *testing.T) {
	// All (default): every local, including the dead temper.
	all := prepare(t, computeSrc, Options{Mode: CaptureAll})
	if got := names(all.Funcs["compute"].Captured); !eq(got, []string{"num", "n", "rp", "temper"}) {
		t.Errorf("all-mode capture = %v", got)
	}

	// Live: n is dead after the recursive call (only used on the entry
	// path); temper is pinned by &temper.
	live := prepare(t, computeSrc, Options{Mode: CaptureLive})
	if got := names(live.Funcs["compute"].Captured); !eq(got, []string{"num", "rp", "temper"}) {
		t.Errorf("live-mode capture = %v", got)
	}
	if got := names(live.Funcs["main"].Captured); !eq(got, []string{"n", "response"}) {
		t.Errorf("live-mode main capture = %v", got)
	}

	// Spec: exactly the Figure 2 list for compute (which contains R);
	// main falls back to all locals.
	spec := prepare(t, computeSrc, Options{
		Mode:      CaptureSpec,
		PointVars: map[string][]string{"R": {"num", "n", "rp"}},
	})
	if got := names(spec.Funcs["compute"].Captured); !eq(got, []string{"num", "n", "rp"}) {
		t.Errorf("spec-mode capture = %v", got)
	}
	if spec.Funcs["compute"].Format != "liiF" {
		t.Errorf("spec-mode format = %s", spec.Funcs["compute"].Format)
	}

	// Spec with an unknown variable errors.
	if _, err := PrepareSource("mod.go", computeSrc, Options{
		Mode:      CaptureSpec,
		PointVars: map[string][]string{"R": {"ghost"}},
	}); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("unknown spec var: %v", err)
	}

	if CaptureAll.String() != "all" || CaptureLive.String() != "live" ||
		CaptureSpec.String() != "spec" || CaptureMode(9).String() != "mode(9)" {
		t.Error("mode names wrong")
	}
}

func names(cvs []CapturedVar) []string {
	out := make([]string, len(cvs))
	for i, cv := range cvs {
		out[i] = cv.Name
	}
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPrepareErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no points", `package p
func main() { mh.Init() }`, "no reconfiguration points"},
		{"unreachable point", `package p
func main() {}
func f() { mh.ReconfigPoint("R") }`, "unreachable"},
		{"nested instrumented call", `package p
func main() {
	use(f(1))
	mh.Write("out", 0)
}
func f(x int) int {
	mh.ReconfigPoint("R")
	return x
}
func use(x int) {}`, "must be a whole statement"},
		{"pointer local live at edge", `package p
func main() {
	x := 1
	p := &x
	f()
	mh.Write("out", *p)
}
func f() { mh.ReconfigPoint("R") }`, "pointer-typed local"},
		{"label collision", `package p
func main() { f() }
func f() {
	x := 0
	goto R
R:
	x++
	mh.ReconfigPoint("R")
	mh.Write("out", x)
}`, "collides"},
		{"bad subset", `package p
func main() { go f() }
func f() { mh.ReconfigPoint("R") }`, "not in the module subset"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := PrepareSource("mod.go", tt.src, Options{})
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error = %v, want mention of %q", err, tt.want)
			}
		})
	}
}

func TestDeadPointerLocalOmitted(t *testing.T) {
	// A pointer local that is dead at every edge is silently dropped from
	// the capture set rather than rejected.
	out := prepare(t, `package p
func main() {
	x := 1
	p := &x
	*p = 2
	f()
	mh.Write("out", x)
}
func f() { mh.ReconfigPoint("R") }
`, Options{})
	for _, cv := range out.Funcs["main"].Captured {
		if cv.Name == "p" {
			t.Error("dead pointer local captured")
		}
	}
}

// ---- end-to-end: the transformed module migrates mid-recursion ----

type harness struct {
	t    *testing.T
	b    *bus.Bus
	disp bus.Port
	sens bus.Port
	c    codec.Codec
}

func computeSpec(name, machine, status string) bus.InstanceSpec {
	return bus.InstanceSpec{
		Name: name, Module: "compute", Machine: machine, Status: status,
		Interfaces: []bus.IfaceSpec{
			{Name: "display", Dir: bus.InOut},
			{Name: "sensor", Dir: bus.In},
		},
	}
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	b := bus.New()
	for _, spec := range []bus.InstanceSpec{
		{Name: "display", Interfaces: []bus.IfaceSpec{{Name: "temper", Dir: bus.InOut}}},
		{Name: "sensor", Interfaces: []bus.IfaceSpec{{Name: "out", Dir: bus.Out}}},
		computeSpec("compute", "machineA", bus.StatusAdd),
	} {
		if err := b.AddInstance(spec); err != nil {
			t.Fatal(err)
		}
	}
	for _, bd := range [][2]bus.Endpoint{
		{{Instance: "display", Interface: "temper"}, {Instance: "compute", Interface: "display"}},
		{{Instance: "sensor", Interface: "out"}, {Instance: "compute", Interface: "sensor"}},
	} {
		if err := b.AddBinding(bd[0], bd[1]); err != nil {
			t.Fatal(err)
		}
	}
	disp, err := b.Attach("display")
	if err != nil {
		t.Fatal(err)
	}
	sens, err := b.Attach("sensor")
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, b: b, disp: disp, sens: sens, c: codec.Default()}
}

func (h *harness) start(out *Output, instance string) (*mh.Runtime, chan error) {
	h.t.Helper()
	port, err := h.b.Attach(instance)
	if err != nil {
		h.t.Fatal(err)
	}
	rt := mh.New(port, mh.WithSleepUnit(time.Microsecond))
	in := interp.New(out.Prog, out.Info, rt)
	done := make(chan error, 1)
	go func() {
		_, err := in.Run()
		done <- err
	}()
	return rt, done
}

func (h *harness) sendInt(p bus.Port, iface string, v int) {
	h.t.Helper()
	data, err := h.c.EncodeValue(state.IntValue(int64(v)))
	if err != nil {
		h.t.Fatal(err)
	}
	if err := p.Write(iface, data); err != nil {
		h.t.Fatal(err)
	}
}

func (h *harness) readFloat() float64 {
	h.t.Helper()
	m, err := h.disp.Read("temper")
	if err != nil {
		h.t.Fatal(err)
	}
	v, err := h.c.DecodeValue(m.Data)
	if err != nil {
		h.t.Fatal(err)
	}
	return v.Float
}

func (h *harness) migrate(owner interface{ Data() []byte }) {
	h.t.Helper()
	if err := h.b.AddInstance(computeSpec("compute2", "machineB", bus.StatusClone)); err != nil {
		h.t.Fatal(err)
	}
	err := h.b.Rebind([]bus.BindEdit{
		{Op: "del", From: bus.Endpoint{Instance: "display", Interface: "temper"}, To: bus.Endpoint{Instance: "compute", Interface: "display"}},
		{Op: "add", From: bus.Endpoint{Instance: "display", Interface: "temper"}, To: bus.Endpoint{Instance: "compute2", Interface: "display"}},
		{Op: "del", From: bus.Endpoint{Instance: "sensor", Interface: "out"}, To: bus.Endpoint{Instance: "compute", Interface: "sensor"}},
		{Op: "add", From: bus.Endpoint{Instance: "sensor", Interface: "out"}, To: bus.Endpoint{Instance: "compute2", Interface: "sensor"}},
		{Op: "cq", From: bus.Endpoint{Instance: "compute", Interface: "display"}, To: bus.Endpoint{Instance: "compute2", Interface: "display"}},
		{Op: "cq", From: bus.Endpoint{Instance: "compute", Interface: "sensor"}, To: bus.Endpoint{Instance: "compute2", Interface: "sensor"}},
	})
	if err != nil {
		h.t.Fatal(err)
	}
	if err := h.b.InstallState("compute2", owner.Data()); err != nil {
		h.t.Fatal(err)
	}
	if err := h.b.DeleteInstance("compute"); err != nil {
		h.t.Fatal(err)
	}
}

func testMigration(t *testing.T, opts Options) {
	out := prepare(t, computeSrc, opts)
	h := newHarness(t)
	rt, done := h.start(out, "compute")

	h.sendInt(h.disp, "temper", 3)
	time.Sleep(50 * time.Millisecond)
	if err := h.b.SignalReconfig("compute"); err != nil {
		t.Fatal(err)
	}
	h.sendInt(h.sens, "out", 60)

	owner, err := h.b.AwaitDivulged("compute", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("module failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("module did not exit after divulging")
	}
	if rt.Err() != nil {
		t.Fatal(rt.Err())
	}

	st, err := h.c.DecodeState(owner.Data())
	if err != nil {
		t.Fatal(err)
	}
	if st.Depth() != 3 {
		t.Fatalf("captured %d frames, want 3:\n%s", st.Depth(), st)
	}

	h.migrate(owner)
	rt2, done2 := h.start(out, "compute2")
	h.sendInt(h.sens, "out", 70)
	h.sendInt(h.sens, "out", 80)
	want := 60.0/3 + 70.0/3 + 80.0/3
	if got := h.readFloat(); got != want {
		t.Errorf("moved computation = %g, want %g", got, want)
	}

	// Still serving.
	h.sendInt(h.disp, "temper", 2)
	h.sendInt(h.sens, "out", 10)
	h.sendInt(h.sens, "out", 30)
	if got := h.readFloat(); got != 20 {
		t.Errorf("fresh request = %g, want 20", got)
	}

	if err := h.b.DeleteInstance("compute2"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done2:
	case <-time.After(5 * time.Second):
		t.Fatal("clone did not stop")
	}
	_ = rt2
}

// TestMoveDuringRecursionTransformed (experiment E1, automatic pipeline):
// the module prepared by the transform — not hand-instrumented — migrates
// mid-recursion with an exact answer, under each capture mode.
func TestMoveDuringRecursionTransformed(t *testing.T) {
	t.Run("all", func(t *testing.T) { testMigration(t, Options{Mode: CaptureAll}) })
	t.Run("live", func(t *testing.T) { testMigration(t, Options{Mode: CaptureLive}) })
	t.Run("spec", func(t *testing.T) {
		testMigration(t, Options{
			Mode:      CaptureSpec,
			PointVars: map[string][]string{"R": {"num", "n", "rp"}},
		})
	})
}

// TestTransformedBehaviorUnchanged: with no reconfiguration request, the
// instrumented module computes exactly what the original computes.
func TestTransformedBehaviorUnchanged(t *testing.T) {
	out := prepare(t, computeSrc, Options{})
	h := newHarness(t)
	_, done := h.start(out, "compute")
	h.sendInt(h.disp, "temper", 4)
	for _, v := range []int{10, 20, 30, 40} {
		h.sendInt(h.sens, "out", v)
	}
	want := 10.0/4 + 20.0/4 + 30.0/4 + 40.0/4
	if got := h.readFloat(); got != want {
		t.Errorf("average = %g, want %g", got, want)
	}
	if err := h.b.DeleteInstance("compute"); err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestHoistedArgumentsMigration: a call whose argument expression could
// fault on re-evaluation (division by a variable) is hoisted into a
// captured temporary; migration across that call is exact.
func TestHoistedArgumentsMigration(t *testing.T) {
	src := `package worker

func main() {
	var total int
	var count int
	mh.Init()
	for {
		if mh.QueryIfMsgs("job") {
			mh.Read("job", &total, &count)
			r := step(total / count)
			count = 0
			mh.Write("job", r)
		}
		mh.Sleep(1)
	}
}

func step(avg int) int {
	var adjust int
	mh.ReconfigPoint("P")
	mh.Read("adjust", &adjust)
	return avg + adjust
}
`
	out := prepare(t, src, Options{})
	gen, _ := out.Source()
	if !strings.Contains(gen, "mhArg1 = total / count") {
		t.Errorf("unsafe argument not hoisted:\n%s", gen)
	}

	// Note count is zeroed AFTER the call: re-evaluating total/count
	// during restoration would divide by zero. The hoisted temp makes the
	// re-issued call safe.
	b := bus.New()
	spec := bus.InstanceSpec{
		Name: "w", Module: "worker",
		Interfaces: []bus.IfaceSpec{
			{Name: "job", Dir: bus.InOut},
			{Name: "adjust", Dir: bus.In},
		},
	}
	if err := b.AddInstance(spec); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(bus.InstanceSpec{
		Name: "driver",
		Interfaces: []bus.IfaceSpec{
			{Name: "jobs", Dir: bus.InOut},
			{Name: "adj", Dir: bus.Out},
		},
	}); err != nil {
		t.Fatal(err)
	}
	for _, bd := range [][2]bus.Endpoint{
		{{Instance: "driver", Interface: "jobs"}, {Instance: "w", Interface: "job"}},
		{{Instance: "driver", Interface: "adj"}, {Instance: "w", Interface: "adjust"}},
	} {
		if err := b.AddBinding(bd[0], bd[1]); err != nil {
			t.Fatal(err)
		}
	}
	driver, err := b.Attach("driver")
	if err != nil {
		t.Fatal(err)
	}
	c := codec.Default()

	port, err := b.Attach("w")
	if err != nil {
		t.Fatal(err)
	}
	rt := mh.New(port, mh.WithSleepUnit(time.Microsecond))
	in := interp.New(out.Prog, out.Info, rt)
	done := make(chan error, 1)
	go func() { _, err := in.Run(); done <- err }()

	// Send the job (total=84, count=2 -> avg 42), let the module block on
	// the adjust read, then reconfigure.
	tuple := state.Value{Kind: state.KindList, Type: "tuple", List: []state.Value{
		state.IntValue(84), state.IntValue(2),
	}}
	data, err := c.EncodeValue(tuple)
	if err != nil {
		t.Fatal(err)
	}
	if err := driver.Write("jobs", data); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := b.SignalReconfig("w"); err != nil {
		t.Fatal(err)
	}
	adjData, _ := c.EncodeValue(state.IntValue(1))
	if err := driver.Write("adj", adjData); err != nil {
		t.Fatal(err)
	}
	// The module wakes, applies adjust=1... no: the signal is polled at P
	// only when step executes again. Drive one more job so the point runs.
	// Actually: the read returns, step returns 43, the loop writes it.
	m, err := driver.Read("jobs")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := c.DecodeValue(m.Data)
	if v.Int != 43 {
		t.Fatalf("first job = %v, want 43", v)
	}

	// Second job: the pending reconfig flag is tested at P, capture
	// happens mid-call with count already zeroed.
	tuple.List = []state.Value{state.IntValue(100), state.IntValue(4)}
	data, _ = c.EncodeValue(tuple)
	if err := driver.Write("jobs", data); err != nil {
		t.Fatal(err)
	}
	owner, err := b.AwaitDivulged("w", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("module failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("module did not exit")
	}

	// Clone, rebind, restore: the re-issued call uses the captured
	// mhArg1 = 25, not total/count = 100/0.
	if err := b.AddInstance(bus.InstanceSpec{
		Name: "w2", Module: "worker", Status: bus.StatusClone,
		Interfaces: spec.Interfaces,
	}); err != nil {
		t.Fatal(err)
	}
	err = b.Rebind([]bus.BindEdit{
		{Op: "del", From: bus.Endpoint{Instance: "driver", Interface: "jobs"}, To: bus.Endpoint{Instance: "w", Interface: "job"}},
		{Op: "add", From: bus.Endpoint{Instance: "driver", Interface: "jobs"}, To: bus.Endpoint{Instance: "w2", Interface: "job"}},
		{Op: "del", From: bus.Endpoint{Instance: "driver", Interface: "adj"}, To: bus.Endpoint{Instance: "w", Interface: "adjust"}},
		{Op: "add", From: bus.Endpoint{Instance: "driver", Interface: "adj"}, To: bus.Endpoint{Instance: "w2", Interface: "adjust"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.InstallState("w2", owner.Data()); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteInstance("w"); err != nil {
		t.Fatal(err)
	}
	port2, err := b.Attach("w2")
	if err != nil {
		t.Fatal(err)
	}
	rt2 := mh.New(port2, mh.WithSleepUnit(time.Microsecond))
	in2 := interp.New(out.Prog, out.Info, rt2)
	done2 := make(chan error, 1)
	go func() { _, err := in2.Run(); done2 <- err }()

	if err := driver.Write("adj", adjData); err != nil {
		t.Fatal(err)
	}
	m, err = driver.Read("jobs")
	if err != nil {
		t.Fatal(err)
	}
	v, _ = c.DecodeValue(m.Data)
	if v.Int != 26 { // 100/4 + 1
		t.Errorf("restored job = %v, want 26", v)
	}
	if err := b.DeleteInstance("w2"); err != nil {
		t.Fatal(err)
	}
	<-done2
}

// TestMultiHopCallChain: a reconfiguration point three calls deep; every
// procedure on the chain is instrumented and the stack rebuilds across all
// of them.
func TestMultiHopCallChain(t *testing.T) {
	src := `package chain

func main() {
	var x int
	mh.Init()
	for {
		if mh.QueryIfMsgs("in") {
			mh.Read("in", &x)
			r := a(x)
			mh.Write("in", r)
		}
		mh.Sleep(1)
	}
}

func a(x int) int {
	y := b(x + 1)
	return y * 2
}

func b(x int) int {
	z := c(x * 3)
	return z + 5
}

func c(x int) int {
	var delta int
	mh.ReconfigPoint("R")
	mh.Read("delta", &delta)
	return x + delta
}

func helperNotOnPath(q int) int {
	return q * q
}
`
	out := prepare(t, src, Options{})
	// helperNotOnPath is not instrumented.
	if _, ok := out.Funcs["helperNotOnPath"]; ok {
		t.Error("off-path procedure instrumented")
	}
	for _, fn := range []string{"main", "a", "b", "c"} {
		if _, ok := out.Funcs[fn]; !ok {
			t.Errorf("%s not instrumented", fn)
		}
	}

	b2 := bus.New()
	spec := bus.InstanceSpec{
		Name: "m", Module: "chain",
		Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.InOut}, {Name: "delta", Dir: bus.In}},
	}
	if err := b2.AddInstance(spec); err != nil {
		t.Fatal(err)
	}
	if err := b2.AddInstance(bus.InstanceSpec{
		Name:       "drv",
		Interfaces: []bus.IfaceSpec{{Name: "io", Dir: bus.InOut}, {Name: "d", Dir: bus.Out}},
	}); err != nil {
		t.Fatal(err)
	}
	for _, bd := range [][2]bus.Endpoint{
		{{Instance: "drv", Interface: "io"}, {Instance: "m", Interface: "in"}},
		{{Instance: "drv", Interface: "d"}, {Instance: "m", Interface: "delta"}},
	} {
		if err := b2.AddBinding(bd[0], bd[1]); err != nil {
			t.Fatal(err)
		}
	}
	drv, err := b2.Attach("drv")
	if err != nil {
		t.Fatal(err)
	}
	c := codec.Default()

	port, err := b2.Attach("m")
	if err != nil {
		t.Fatal(err)
	}
	rt := mh.New(port, mh.WithSleepUnit(time.Microsecond))
	in := interp.New(out.Prog, out.Info, rt)
	go in.Run()

	// x=7: a(7) -> b(8) -> c(24) blocks on delta.
	data, _ := c.EncodeValue(state.IntValue(7))
	if err := drv.Write("io", data); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := b2.SignalReconfig("m"); err != nil {
		t.Fatal(err)
	}
	// Unblock c; the NEXT execution of R sees the flag... c runs once per
	// request, so complete this request and send another.
	dd, _ := c.EncodeValue(state.IntValue(100))
	if err := drv.Write("d", dd); err != nil {
		t.Fatal(err)
	}
	m, err := drv.Read("io")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := c.DecodeValue(m.Data)
	if v.Int != ((24+100)+5)*2 {
		t.Fatalf("first answer = %v", v)
	}

	// Second request: captured at R with 4 frames (main, a, b, c).
	data, _ = c.EncodeValue(state.IntValue(2))
	if err := drv.Write("io", data); err != nil {
		t.Fatal(err)
	}
	owner, err := b2.AwaitDivulged("m", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.DecodeState(owner.Data())
	if err != nil {
		t.Fatal(err)
	}
	if st.Depth() != 4 {
		t.Fatalf("depth = %d, want 4:\n%s", st.Depth(), st)
	}

	// Restore into a clone and finish: a(2) -> b(3) -> c(9)+delta.
	if err := b2.AddInstance(bus.InstanceSpec{
		Name: "m2", Module: "chain", Status: bus.StatusClone, Interfaces: spec.Interfaces,
	}); err != nil {
		t.Fatal(err)
	}
	err = b2.Rebind([]bus.BindEdit{
		{Op: "del", From: bus.Endpoint{Instance: "drv", Interface: "io"}, To: bus.Endpoint{Instance: "m", Interface: "in"}},
		{Op: "add", From: bus.Endpoint{Instance: "drv", Interface: "io"}, To: bus.Endpoint{Instance: "m2", Interface: "in"}},
		{Op: "del", From: bus.Endpoint{Instance: "drv", Interface: "d"}, To: bus.Endpoint{Instance: "m", Interface: "delta"}},
		{Op: "add", From: bus.Endpoint{Instance: "drv", Interface: "d"}, To: bus.Endpoint{Instance: "m2", Interface: "delta"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.InstallState("m2", owner.Data()); err != nil {
		t.Fatal(err)
	}
	if err := b2.DeleteInstance("m"); err != nil {
		t.Fatal(err)
	}
	port2, err := b2.Attach("m2")
	if err != nil {
		t.Fatal(err)
	}
	rt2 := mh.New(port2, mh.WithSleepUnit(time.Microsecond))
	in2 := interp.New(out.Prog, out.Info, rt2)
	go in2.Run()

	if err := drv.Write("d", dd); err != nil {
		t.Fatal(err)
	}
	m, err = drv.Read("io")
	if err != nil {
		t.Fatal(err)
	}
	v, _ = c.DecodeValue(m.Data)
	if v.Int != ((9+100)+5)*2 {
		t.Errorf("restored answer = %v, want %d", v, ((9+100)+5)*2)
	}
	b2.DeleteInstance("m2")
}

// TestStructStateMigration: struct-typed and slice-typed locals cross the
// migration intact.
func TestStructStateMigration(t *testing.T) {
	src := `package stats

type Window struct {
	Count int
	Sum   float64
}

func main() {
	var w Window
	var history []float64
	var x float64
	mh.Init()
	for {
		if mh.QueryIfMsgs("in") {
			mh.Read("in", &x)
			w.Count++
			w.Sum += x
			history = append(history, x)
			process(&w)
			mh.Write("in", w.Sum+float64(len(history)))
		}
		mh.Sleep(1)
	}
}

func process(w *Window) {
	mh.ReconfigPoint("R")
	if w.Count > 100 {
		w.Count = 0
	}
}
`
	out := prepare(t, src, Options{})
	b := bus.New()
	spec := bus.InstanceSpec{
		Name: "s", Module: "stats",
		Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.InOut}},
	}
	if err := b.AddInstance(spec); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(bus.InstanceSpec{
		Name: "drv", Interfaces: []bus.IfaceSpec{{Name: "io", Dir: bus.InOut}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBinding(bus.Endpoint{Instance: "drv", Interface: "io"}, bus.Endpoint{Instance: "s", Interface: "in"}); err != nil {
		t.Fatal(err)
	}
	drv, err := b.Attach("drv")
	if err != nil {
		t.Fatal(err)
	}
	c := codec.Default()
	send := func(f float64) {
		data, _ := c.EncodeValue(state.FloatValue(f))
		if err := drv.Write("io", data); err != nil {
			t.Fatal(err)
		}
	}
	recv := func() float64 {
		m, err := drv.Read("io")
		if err != nil {
			t.Fatal(err)
		}
		v, _ := c.DecodeValue(m.Data)
		return v.Float
	}

	port, err := b.Attach("s")
	if err != nil {
		t.Fatal(err)
	}
	rt := mh.New(port, mh.WithSleepUnit(time.Microsecond))
	in := interp.New(out.Prog, out.Info, rt)
	go in.Run()

	send(1.5)
	if got := recv(); got != 1.5+1 {
		t.Fatalf("first = %g", got)
	}
	send(2.5)
	if got := recv(); got != 4.0+2 {
		t.Fatalf("second = %g", got)
	}

	// Reconfigure: flag tested at R during the next request.
	if err := b.SignalReconfig("s"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	send(3.0)
	owner, err := b.AwaitDivulged("s", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	if err := b.AddInstance(bus.InstanceSpec{
		Name: "s2", Module: "stats", Status: bus.StatusClone, Interfaces: spec.Interfaces,
	}); err != nil {
		t.Fatal(err)
	}
	err = b.Rebind([]bus.BindEdit{
		{Op: "del", From: bus.Endpoint{Instance: "drv", Interface: "io"}, To: bus.Endpoint{Instance: "s", Interface: "in"}},
		{Op: "add", From: bus.Endpoint{Instance: "drv", Interface: "io"}, To: bus.Endpoint{Instance: "s2", Interface: "in"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.InstallState("s2", owner.Data()); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteInstance("s"); err != nil {
		t.Fatal(err)
	}
	port2, err := b.Attach("s2")
	if err != nil {
		t.Fatal(err)
	}
	rt2 := mh.New(port2, mh.WithSleepUnit(time.Microsecond))
	in2 := interp.New(out.Prog, out.Info, rt2)
	go in2.Run()

	// The interrupted request completes on the clone with full state:
	// w = {3, 7.0}, history len 3.
	if got := recv(); got != 7.0+3 {
		t.Errorf("restored = %g, want 10", got)
	}
	// Continuity.
	send(1.0)
	if got := recv(); got != 8.0+4 {
		t.Errorf("continued = %g, want 12", got)
	}
	b.DeleteInstance("s2")
}

// TestOutputIsValidSubset: the instrumented program re-parses, re-checks
// and rebuilds a call graph — i.e. Prepare's output is a module program.
func TestOutputIsValidSubset(t *testing.T) {
	out := prepare(t, computeSrc, Options{})
	if out.Prog == nil || out.Info == nil {
		t.Fatal("no reloaded program")
	}
	src, err := out.Source()
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := lang.ParseSource("gen.go", src)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if _, err := lang.Check(prog2); err != nil {
		t.Fatalf("recheck: %v", err)
	}
	if out.ReportString() == "" {
		t.Error("empty report")
	}
}
