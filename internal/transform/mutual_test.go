package transform

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/codec"
	"repro/internal/interp"
	"repro/internal/mh"
)

// TestMutualRecursionMigration: the activation-record stack alternates
// between two mutually recursive procedures when the capture happens; the
// restore blocks rebuild the interleaved stack exactly.
func TestMutualRecursionMigration(t *testing.T) {
	src := `package zigzag

func main() {
	var n int
	mh.Init()
	for {
		if mh.QueryIfMsgs("in") {
			mh.Read("in", &n)
			var total float64
			zig(n, &total)
			mh.Write("in", total)
		}
		mh.Sleep(1)
	}
}

func zig(n int, tp *float64) {
	var v int
	if n <= 0 {
		return
	}
	zag(n-1, tp)
	mh.ReconfigPoint("RZ")
	mh.Read("vals", &v)
	*tp = *tp + float64(v)*2.0
}

func zag(n int, tp *float64) {
	var v int
	if n <= 0 {
		return
	}
	zig(n-1, tp)
	mh.Read("vals", &v)
	*tp = *tp - float64(v)
}
`
	out := prepare(t, src, Options{})
	// Both procedures are instrumented; only zig has a reconfiguration
	// point, but zag sits on stack paths to it.
	for _, fn := range []string{"main", "zig", "zag"} {
		if _, ok := out.Funcs[fn]; !ok {
			t.Fatalf("%s not instrumented", fn)
		}
	}

	b := bus.New()
	spec := bus.InstanceSpec{
		Name: "z", Module: "zigzag",
		Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.InOut}, {Name: "vals", Dir: bus.In}},
	}
	if err := b.AddInstance(spec); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(bus.InstanceSpec{
		Name:       "drv",
		Interfaces: []bus.IfaceSpec{{Name: "io", Dir: bus.InOut}, {Name: "v", Dir: bus.Out}},
	}); err != nil {
		t.Fatal(err)
	}
	for _, bd := range [][2]bus.Endpoint{
		{{Instance: "drv", Interface: "io"}, {Instance: "z", Interface: "in"}},
		{{Instance: "drv", Interface: "v"}, {Instance: "z", Interface: "vals"}},
	} {
		if err := b.AddBinding(bd[0], bd[1]); err != nil {
			t.Fatal(err)
		}
	}
	drvPort, err := b.Attach("drv")
	if err != nil {
		t.Fatal(err)
	}
	drv := mh.New(drvPort)
	drv.Init()
	launch := func(name string) chan error {
		port, err := b.Attach(name)
		if err != nil {
			t.Fatal(err)
		}
		rt := mh.New(port, mh.WithSleepUnit(time.Microsecond))
		in := interp.New(out.Prog, out.Info, rt)
		done := make(chan error, 1)
		go func() {
			_, err := in.Run()
			done <- err
		}()
		return done
	}
	done := launch("z")

	// n=5: zig(5)->zag(4)->zig(3)->zag(2)->zig(1)->zag(0) returns; the
	// unwind reads one value per live level, innermost first:
	// zig(1) +2*v1, zag(2) -v2, zig(3) +2*v3, zag(4) -v4, zig(5) +2*v5.
	expected := func(vals []int) float64 {
		total := 0.0
		for i, v := range vals {
			if i%2 == 0 {
				total += float64(v) * 2
			} else {
				total -= float64(v)
			}
		}
		return total
	}

	drv.Write("io", 5)
	time.Sleep(30 * time.Millisecond)
	// Feed two values (zig(1) and zag(2) levels pop), then interrupt: the
	// next zig level (zig(3)) tests the flag at RZ after its read... the
	// flag is polled at the next reconfiguration point *execution*, which
	// is zig(3)'s capture block after zag(2) returns.
	drv.Write("v", 10)
	time.Sleep(30 * time.Millisecond)
	if err := b.SignalReconfig("z"); err != nil {
		t.Fatal(err)
	}
	drv.Write("v", 20)

	owner, err := b.AwaitDivulged("z", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("module did not exit")
	}
	st, err := codec.Default().DecodeState(owner.Data())
	if err != nil {
		t.Fatal(err)
	}
	// Live frames: main, zig(5), zag(4), zig(3) -> depth 4, alternating
	// procedure names.
	if st.Depth() != 4 {
		t.Fatalf("depth = %d\n%s", st.Depth(), st)
	}
	wantFuncs := []string{"main", "zig", "zag", "zig"}
	for i, f := range st.Frames {
		if f.Func != wantFuncs[i] {
			t.Errorf("frame %d = %s, want %s", i, f.Func, wantFuncs[i])
		}
	}

	// Clone, rebind, restore, feed the remaining values.
	if err := b.AddInstance(bus.InstanceSpec{
		Name: "z2", Module: "zigzag", Status: bus.StatusClone, Interfaces: spec.Interfaces,
	}); err != nil {
		t.Fatal(err)
	}
	edits := []bus.BindEdit{}
	for _, pair := range [][2]string{{"io", "in"}, {"v", "vals"}} {
		from := bus.Endpoint{Instance: "drv", Interface: pair[0]}
		edits = append(edits,
			bus.BindEdit{Op: "del", From: from, To: bus.Endpoint{Instance: "z", Interface: pair[1]}},
			bus.BindEdit{Op: "add", From: from, To: bus.Endpoint{Instance: "z2", Interface: pair[1]}},
			bus.BindEdit{Op: "cq", From: bus.Endpoint{Instance: "z", Interface: pair[1]}, To: bus.Endpoint{Instance: "z2", Interface: pair[1]}},
		)
	}
	if err := b.Rebind(edits); err != nil {
		t.Fatal(err)
	}
	if err := b.InstallState("z2", owner.Data()); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteInstance("z"); err != nil {
		t.Fatal(err)
	}
	launch("z2")

	drv.Write("v", 30)
	drv.Write("v", 40)
	drv.Write("v", 50)
	var total float64
	drv.Read("io", &total)
	if err := drv.Err(); err != nil {
		t.Fatal(err)
	}
	if want := expected([]int{10, 20, 30, 40, 50}); total != want {
		t.Errorf("zigzag total = %v, want %v", total, want)
	}
	b.DeleteInstance("z2")
}
