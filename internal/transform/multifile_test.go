package transform

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/codec"
	"repro/internal/interp"
	"repro/internal/mh"
)

// TestMultiFileModule: the transformation operates on whole modules, not
// single files — procedures on the reconfiguration path may live in
// different source files.
func TestMultiFileModule(t *testing.T) {
	files := map[string]string{
		"main.go": `package split

func main() {
	var x int
	mh.Init()
	for {
		if mh.QueryIfMsgs("in") {
			mh.Read("in", &x)
			r := outer(x)
			mh.Write("in", r)
		}
		mh.Sleep(1)
	}
}
`,
		"worker.go": `package split

func outer(x int) int {
	return inner(x * 2)
}

func inner(x int) int {
	var d int
	mh.ReconfigPoint("R")
	mh.Read("delta", &d)
	return x + d
}
`,
		"util.go": `package split

func unrelated(a int) int {
	return a * a
}
`,
	}
	out, err := Prepare(files, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Files) != 3 {
		t.Fatalf("output files = %d", len(out.Files))
	}
	// main.go and worker.go are instrumented; util.go untouched.
	if !strings.Contains(out.Files["main.go"], "mh.Restore(\"main\"") {
		t.Errorf("main.go not instrumented:\n%s", out.Files["main.go"])
	}
	for _, fn := range []string{"outer", "inner"} {
		if !strings.Contains(out.Files["worker.go"], "mh.Restore(\""+fn+"\"") {
			t.Errorf("worker.go missing restore for %s:\n%s", fn, out.Files["worker.go"])
		}
	}
	if strings.Contains(out.Files["util.go"], "mh.") {
		t.Errorf("util.go was instrumented:\n%s", out.Files["util.go"])
	}
	if _, ok := out.Funcs["unrelated"]; ok {
		t.Error("unrelated procedure in report")
	}

	// Standalone emission covers multi-file packages too.
	standalone, err := out.Standalone()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(standalone["main.go"], "func mhModuleMain()") {
		t.Error("standalone rename missed")
	}
	if !strings.Contains(standalone["mh_main.go"], "package main") {
		t.Error("bootstrap missing")
	}
	for name, src := range standalone {
		if name == "mh_main.go" {
			continue
		}
		if !strings.HasPrefix(src, "package main") {
			t.Errorf("%s not package main", name)
		}
	}
}

// TestMultiFileMigration: the split module migrates mid-call across the
// desugared return path — the interrupted `return inner(x*2)` resumes by
// re-executing the generated temp assignment.
func TestMultiFileMigration(t *testing.T) {
	files := map[string]string{
		"main.go": `package split

func main() {
	var x int
	mh.Init()
	for {
		if mh.QueryIfMsgs("in") {
			mh.Read("in", &x)
			r := outer(x)
			mh.Write("in", r)
		}
		mh.Sleep(1)
	}
}
`,
		"worker.go": `package split

func outer(x int) int {
	return inner(x * 2)
}

func inner(x int) int {
	var d int
	mh.ReconfigPoint("R")
	mh.Read("delta", &d)
	return x + d
}
`,
	}
	out, err := Prepare(files, Options{})
	if err != nil {
		t.Fatal(err)
	}

	b := bus.New()
	spec := bus.InstanceSpec{
		Name: "s", Module: "split",
		Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.InOut}, {Name: "delta", Dir: bus.In}},
	}
	if err := b.AddInstance(spec); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(bus.InstanceSpec{
		Name:       "drv",
		Interfaces: []bus.IfaceSpec{{Name: "io", Dir: bus.InOut}, {Name: "d", Dir: bus.Out}},
	}); err != nil {
		t.Fatal(err)
	}
	for _, bd := range [][2]bus.Endpoint{
		{{Instance: "drv", Interface: "io"}, {Instance: "s", Interface: "in"}},
		{{Instance: "drv", Interface: "d"}, {Instance: "s", Interface: "delta"}},
	} {
		if err := b.AddBinding(bd[0], bd[1]); err != nil {
			t.Fatal(err)
		}
	}
	drvPort, err := b.Attach("drv")
	if err != nil {
		t.Fatal(err)
	}
	drv := mh.New(drvPort)
	drv.Init()
	launch := func(name string) {
		port, err := b.Attach(name)
		if err != nil {
			t.Fatal(err)
		}
		rt := mh.New(port, mh.WithSleepUnit(time.Microsecond))
		in := interp.New(out.Prog, out.Info, rt)
		go in.Run()
	}
	launch("s")

	// Block inside inner (waiting for delta), then interrupt: the stack
	// is main -> outer (at the desugared return call) -> inner.
	drv.Write("io", 21)
	time.Sleep(30 * time.Millisecond)
	if err := b.SignalReconfig("s"); err != nil {
		t.Fatal(err)
	}
	drv.Write("io", 0) // queue a second request to trigger the point
	owner, err := b.AwaitDivulged("s", 300*time.Millisecond)
	if err == nil {
		// First request is still blocked on delta; the signal is only
		// polled when inner's point next executes — unblock it.
		t.Fatal("divulged before the point could run")
	}
	drv.Write("d", 100)
	var r int
	drv.Read("io", &r)
	if r != 21*2+100 {
		t.Fatalf("first answer = %d", r)
	}
	// Second request runs inner's point with the flag set -> capture with
	// stack depth 3 (main, outer, inner).
	owner, err = b.AwaitDivulged("s", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st, err := codec.Default().DecodeState(owner.Data())
	if err != nil {
		t.Fatal(err)
	}
	if st.Depth() != 3 {
		t.Fatalf("depth = %d\n%s", st.Depth(), st)
	}

	if err := b.AddInstance(bus.InstanceSpec{
		Name: "s2", Module: "split", Status: bus.StatusClone, Interfaces: spec.Interfaces,
	}); err != nil {
		t.Fatal(err)
	}
	edits := []bus.BindEdit{}
	for _, pair := range [][2]string{{"io", "in"}, {"d", "delta"}} {
		from := bus.Endpoint{Instance: "drv", Interface: pair[0]}
		edits = append(edits,
			bus.BindEdit{Op: "del", From: from, To: bus.Endpoint{Instance: "s", Interface: pair[1]}},
			bus.BindEdit{Op: "add", From: from, To: bus.Endpoint{Instance: "s2", Interface: pair[1]}},
			bus.BindEdit{Op: "cq", From: bus.Endpoint{Instance: "s", Interface: pair[1]}, To: bus.Endpoint{Instance: "s2", Interface: pair[1]}},
		)
	}
	if err := b.Rebind(edits); err != nil {
		t.Fatal(err)
	}
	if err := b.InstallState("s2", owner.Data()); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteInstance("s"); err != nil {
		t.Fatal(err)
	}
	launch("s2")

	drv.Write("d", 7)
	drv.Read("io", &r)
	if err := drv.Err(); err != nil {
		t.Fatal(err)
	}
	if r != 0*2+7 {
		t.Errorf("migrated answer = %d, want 7", r)
	}
	b.DeleteInstance("s2")
}
