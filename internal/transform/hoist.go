package transform

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"

	"repro/internal/flatten"
	"repro/internal/lang"
)

// hoistUnsafeArgs rewrites every statement-position call to an instrumented
// procedure so that argument expressions whose re-evaluation could fault or
// diverge are computed into fresh locals before the call:
//
//	compute(acc/n, data[i], &r)   becomes   mhArg1 = acc / n
//	                                        mhArg2 = data[i]
//	                                        compute(mhArg1, mhArg2, &r)
//
// Section 3 of the paper observes that repeating the original call during
// restoration can fault, because the restored local state may differ from
// the state at the original call, and substitutes dummy arguments. Hoisting
// is strictly stronger: the temporaries are ordinary locals, so they are
// captured and restored with the frame, and the re-issued call passes the
// *original* argument values.
func hoistUnsafeArgs(prog *lang.Program, info *lang.Info, nodeSet map[string]bool) error {
	for _, name := range prog.FuncOrder {
		if !nodeSet[name] {
			continue
		}
		fn := prog.Funcs[name]
		h := &hoister{prog: prog, info: info, fn: fn, nodeSet: nodeSet, taken: map[string]bool{}}
		for _, v := range info.FuncVars[name] {
			h.taken[v.Name] = true
		}
		if err := h.run(); err != nil {
			return err
		}
	}
	return nil
}

type hoister struct {
	prog    *lang.Program
	info    *lang.Info
	fn      *lang.Func
	nodeSet map[string]bool
	taken   map[string]bool
	tmpN    int
	// newLocals accumulates hoisted temporaries to declare.
	newLocals []flatten.Local
}

func (h *hoister) run() error {
	body := h.fn.Decl.Body
	var out []ast.Stmt
	for _, s := range body.List {
		pre0, repl0, err := h.desugarReturn(s)
		if err != nil {
			return err
		}
		for _, p := range pre0 {
			pre, repl, err := h.stmt(p)
			if err != nil {
				return err
			}
			out = append(out, pre...)
			out = append(out, repl)
		}
		pre, repl, err := h.stmt(repl0)
		if err != nil {
			return err
		}
		out = append(out, pre...)
		out = append(out, repl)
	}

	// Any instrumented call not at statement position is unsupported.
	if err := h.checkNoNestedInstrumentedCalls(out); err != nil {
		return err
	}

	if len(h.newLocals) > 0 {
		specs := make([]ast.Spec, len(h.newLocals))
		for i, l := range h.newLocals {
			specs[i] = &ast.ValueSpec{
				Names: []*ast.Ident{ast.NewIdent(l.Name)},
				Type:  flatten.TypeExpr(l.Type),
			}
		}
		decl := &ast.DeclStmt{Decl: &ast.GenDecl{Tok: token.VAR, Specs: specs}}
		// Place after the existing hoisted declaration group if present.
		if len(out) > 0 {
			if _, ok := out[0].(*ast.DeclStmt); ok {
				out = append([]ast.Stmt{out[0], decl}, out[1:]...)
			} else {
				out = append([]ast.Stmt{decl}, out...)
			}
		} else {
			out = []ast.Stmt{decl}
		}
	}
	body.List = out
	return nil
}

// stmt returns the temp assignments to insert before s and the (possibly
// relabeled) statement, rewriting the instrumented call's arguments in
// place. When a labeled call needs hoisting, the labels move onto the first
// temp assignment so every control path reaching the call computes the
// temps; during restoration the resume goto targets the call directly and
// the temps arrive from the restored frame instead.
func (h *hoister) stmt(s ast.Stmt) ([]ast.Stmt, ast.Stmt, error) {
	var labels []string
	inner := s
	for {
		ls, ok := inner.(*ast.LabeledStmt)
		if !ok {
			break
		}
		labels = append(labels, ls.Label.Name)
		inner = ls.Stmt
	}
	call := h.instrumentedCallOf(inner)
	if call == nil {
		return nil, s, nil
	}
	var pre []ast.Stmt
	for i, a := range call.Args {
		if argSafe(a) {
			continue
		}
		t := h.info.TypeOf(a)
		if t == nil {
			return nil, s, h.errf(a, "cannot type argument for hoisting")
		}
		if _, isPtr := t.(lang.Pointer); isPtr {
			return nil, s, h.errf(a, "pointer-valued argument expressions to instrumented calls must be &variable")
		}
		name := h.newTemp(t)
		pre = append(pre, &ast.AssignStmt{
			Lhs: []ast.Expr{ast.NewIdent(name)},
			Tok: token.ASSIGN,
			Rhs: []ast.Expr{a},
		})
		call.Args[i] = ast.NewIdent(name)
	}
	if len(pre) == 0 || len(labels) == 0 {
		return pre, s, nil
	}
	head := pre[0]
	for i := len(labels) - 1; i >= 0; i-- {
		head = &ast.LabeledStmt{Label: ast.NewIdent(labels[i]), Stmt: head}
	}
	pre[0] = head
	return pre, inner, nil
}

// desugarReturn rewrites `return f(args)` — where f is instrumented and is
// the entire returned expression — into `mhRetN... = f(args); return
// mhRetN...`, so the call sits at statement position and can carry its
// resume label. Labels stay on the first emitted statement.
func (h *hoister) desugarReturn(s ast.Stmt) ([]ast.Stmt, ast.Stmt, error) {
	var labels []string
	inner := s
	for {
		ls, ok := inner.(*ast.LabeledStmt)
		if !ok {
			break
		}
		labels = append(labels, ls.Label.Name)
		inner = ls.Stmt
	}
	ret, ok := inner.(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil, s, nil
	}
	call, ok := ret.Results[0].(*ast.CallExpr)
	if !ok || !h.isInstrumented(call) {
		return nil, s, nil
	}
	callee := h.prog.Funcs[call.Fun.(*ast.Ident).Name]
	if len(callee.Results) == 0 {
		return nil, s, h.errf(call, "instrumented call with no results cannot be a return expression")
	}
	lhs := make([]ast.Expr, len(callee.Results))
	rets := make([]ast.Expr, len(callee.Results))
	for i, rt := range callee.Results {
		name := h.newTemp(rt)
		lhs[i] = ast.NewIdent(name)
		rets[i] = ast.NewIdent(name)
	}
	assign := ast.Stmt(&ast.AssignStmt{Lhs: lhs, Tok: token.ASSIGN, Rhs: []ast.Expr{call}})
	for i := len(labels) - 1; i >= 0; i-- {
		assign = &ast.LabeledStmt{Label: ast.NewIdent(labels[i]), Stmt: assign}
	}
	return []ast.Stmt{assign}, &ast.ReturnStmt{Results: rets}, nil
}

// instrumentedCallOf recognizes the two statement forms an instrumented
// call may take: a call statement, or an assignment whose single RHS is the
// call.
func (h *hoister) instrumentedCallOf(s ast.Stmt) *ast.CallExpr {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && h.isInstrumented(call) {
			return call
		}
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			if call, ok := st.Rhs[0].(*ast.CallExpr); ok && h.isInstrumented(call) {
				return call
			}
		}
	}
	return nil
}

func (h *hoister) isInstrumented(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && h.nodeSet[id.Name]
}

// checkNoNestedInstrumentedCalls rejects instrumented calls in expression
// position: their interruption could not resume by re-executing a whole
// statement.
func (h *hoister) checkNoNestedInstrumentedCalls(body []ast.Stmt) error {
	var err error
	for _, s := range body {
		inner := s
		for {
			ls, ok := inner.(*ast.LabeledStmt)
			if !ok {
				break
			}
			inner = ls.Stmt
		}
		top := h.instrumentedCallOf(inner)
		ast.Inspect(inner, func(n ast.Node) bool {
			if err != nil {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || call == top || !h.isInstrumented(call) {
				return true
			}
			err = h.errf(call, "call to instrumented procedure %s must be a whole statement (call statement or x = f(...))",
				call.Fun.(*ast.Ident).Name)
			return false
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (h *hoister) newTemp(t lang.Type) string {
	for {
		h.tmpN++
		name := "mhArg" + strconv.Itoa(h.tmpN)
		if !h.taken[name] {
			h.taken[name] = true
			h.newLocals = append(h.newLocals, flatten.Local{Name: name, Type: t})
			return name
		}
	}
}

func (h *hoister) errf(n ast.Node, format string, args ...any) error {
	pos := h.prog.Fset.Position(n.Pos())
	return fmt.Errorf("transform: %s: %s", pos, fmt.Sprintf(format, args...))
}

// argSafe reports whether re-evaluating the expression during restoration
// is guaranteed to neither fault nor diverge: identifiers, literals, &ident,
// *ident, and fault-free arithmetic (+, -, *, comparisons, !) over safe
// operands. Division, modulo, shifts, indexing and calls can fault or
// diverge, so they are hoisted — the paper's "expressions whose evaluation
// could result in a run-time error".
func argSafe(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return argSafe(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND || x.Op == token.SUB || x.Op == token.ADD || x.Op == token.NOT {
			return argSafe(x.X)
		}
		return false
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL,
			token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return argSafe(x.X) && argSafe(x.Y)
		default:
			return false
		}
	case *ast.StarExpr:
		_, ok := x.X.(*ast.Ident)
		return ok
	default:
		return false
	}
}
