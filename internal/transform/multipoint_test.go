package transform

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/interp"
	"repro/internal/mh"
)

const dualPointSrc = `package dual

func main() {
	var x int
	mh.Init()
	for {
		if mh.QueryIfMsgs("in") {
			mh.Read("in", &x)
			r := work(x)
			mh.Write("in", r)
		}
		mh.Sleep(1)
	}
}

func work(x int) int {
	var a int
	var b int
	mh.ReconfigPoint("P1")
	mh.Read("feedA", &a)
	x = x + a
	mh.ReconfigPoint("P2")
	mh.Read("feedB", &b)
	return x + b
}
`

// dualWorld wires the dual-point worker to a driver with three interfaces.
type dualWorld struct {
	t    *testing.T
	b    *bus.Bus
	out  *Output
	drv  *mh.Runtime
	done chan error
}

func newDualWorld(t *testing.T, out *Output) *dualWorld {
	t.Helper()
	b := bus.New()
	workerSpec := bus.InstanceSpec{
		Name: "w", Module: "dual",
		Interfaces: []bus.IfaceSpec{
			{Name: "in", Dir: bus.InOut},
			{Name: "feedA", Dir: bus.In},
			{Name: "feedB", Dir: bus.In},
		},
	}
	if err := b.AddInstance(workerSpec); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(bus.InstanceSpec{
		Name: "drv",
		Interfaces: []bus.IfaceSpec{
			{Name: "io", Dir: bus.InOut},
			{Name: "fa", Dir: bus.Out},
			{Name: "fb", Dir: bus.Out},
		},
	}); err != nil {
		t.Fatal(err)
	}
	for _, bd := range [][2]bus.Endpoint{
		{{Instance: "drv", Interface: "io"}, {Instance: "w", Interface: "in"}},
		{{Instance: "drv", Interface: "fa"}, {Instance: "w", Interface: "feedA"}},
		{{Instance: "drv", Interface: "fb"}, {Instance: "w", Interface: "feedB"}},
	} {
		if err := b.AddBinding(bd[0], bd[1]); err != nil {
			t.Fatal(err)
		}
	}
	drvPort, err := b.Attach("drv")
	if err != nil {
		t.Fatal(err)
	}
	drv := mh.New(drvPort)
	drv.Init()
	w := &dualWorld{t: t, b: b, out: out, drv: drv}
	w.launch("w")
	return w
}

func (w *dualWorld) launch(instance string) {
	w.t.Helper()
	port, err := w.b.Attach(instance)
	if err != nil {
		w.t.Fatal(err)
	}
	rt := mh.New(port, mh.WithSleepUnit(time.Microsecond))
	in := interp.New(w.out.Prog, w.out.Info, rt)
	w.done = make(chan error, 1)
	done := w.done
	go func() {
		_, err := in.Run()
		done <- err
	}()
}

func (w *dualWorld) migrate() {
	w.t.Helper()
	owner, err := w.b.AwaitDivulged("w", 5*time.Second)
	if err != nil {
		w.t.Fatal(err)
	}
	select {
	case err := <-w.done:
		if err != nil {
			w.t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		w.t.Fatal("module did not exit after divulging")
	}
	info, err := w.b.Info("w")
	if err != nil {
		w.t.Fatal(err)
	}
	if err := w.b.AddInstance(bus.InstanceSpec{
		Name: "w2", Module: info.Module, Machine: "machineB",
		Status: bus.StatusClone, Interfaces: info.Interfaces,
	}); err != nil {
		w.t.Fatal(err)
	}
	edits := []bus.BindEdit{}
	for _, pair := range [][2]string{{"io", "in"}, {"fa", "feedA"}, {"fb", "feedB"}} {
		from := bus.Endpoint{Instance: "drv", Interface: pair[0]}
		oldTo := bus.Endpoint{Instance: "w", Interface: pair[1]}
		newTo := bus.Endpoint{Instance: "w2", Interface: pair[1]}
		edits = append(edits,
			bus.BindEdit{Op: "del", From: from, To: oldTo},
			bus.BindEdit{Op: "add", From: from, To: newTo},
			bus.BindEdit{Op: "cq", From: oldTo, To: newTo},
		)
	}
	if err := w.b.Rebind(edits); err != nil {
		w.t.Fatal(err)
	}
	if err := w.b.InstallState("w2", owner.Data()); err != nil {
		w.t.Fatal(err)
	}
	if err := w.b.DeleteInstance("w"); err != nil {
		w.t.Fatal(err)
	}
	w.launch("w2")
}

// TestMultiplePointsShareStructure: a procedure with two reconfiguration
// points gets one restore block dispatching to both, the caller's capture
// blocks are shared — "reconfiguration points can share capture blocks"
// (Section 3) — and interruption at either point resumes exactly.
func TestMultiplePointsShareStructure(t *testing.T) {
	out := prepare(t, dualPointSrc, Options{})
	gen, err := out.Source()
	if err != nil {
		t.Fatal(err)
	}

	// One capture block in main per call edge — not per point.
	if got := strings.Count(gen, `mh.Capture("main"`); got != 1 {
		t.Errorf("main has %d capture blocks, want 1 (shared across points):\n%s", got, gen)
	}
	if got := strings.Count(gen, `mh.Capture("work"`); got != 2 {
		t.Errorf("work has %d capture blocks, want 2:\n%s", got, gen)
	}
	for _, want := range []string{"goto P1", "goto P2", "P1:", "P2:"} {
		if !strings.Contains(gen, want) {
			t.Errorf("missing %q:\n%s", want, gen)
		}
	}
	if edges := out.Funcs["work"].Edges; len(edges) != 2 {
		t.Fatalf("work edges = %v", edges)
	}

	t.Run("interrupt-at-P1", func(t *testing.T) {
		w := newDualWorld(t, out)
		// Flag is set while the module idles, so the first point
		// executed — P1, before reading a — triggers the capture.
		if err := w.b.SignalReconfig("w"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(30 * time.Millisecond)
		w.drv.Write("io", 100)
		w.migrate()
		w.drv.Write("fa", 7)
		w.drv.Write("fb", 9)
		var r int
		w.drv.Read("io", &r)
		if err := w.drv.Err(); err != nil {
			t.Fatal(err)
		}
		if r != 116 {
			t.Errorf("answer = %d, want 116", r)
		}
	})

	t.Run("interrupt-at-P2", func(t *testing.T) {
		w := newDualWorld(t, out)
		// The module blocks reading feedA; the signal lands while it is
		// blocked, so P2 — after a is applied — triggers the capture.
		w.drv.Write("io", 100)
		time.Sleep(30 * time.Millisecond)
		if err := w.b.SignalReconfig("w"); err != nil {
			t.Fatal(err)
		}
		w.drv.Write("fa", 7)
		w.migrate()
		w.drv.Write("fb", 9)
		var r int
		w.drv.Read("io", &r)
		if err := w.drv.Err(); err != nil {
			t.Fatal(err)
		}
		if r != 116 {
			t.Errorf("answer = %d, want 116", r)
		}
	})
}

// TestRichControlFlowMigration: the instrumented procedure contains range
// loops, switches and nested control flow around the reconfiguration
// point; flatten+weave handle it and migration preserves the state.
func TestRichControlFlowMigration(t *testing.T) {
	src := `package rich

func main() {
	var n int
	mh.Init()
	for {
		if mh.QueryIfMsgs("in") {
			mh.Read("in", &n)
			r := crunch(n)
			mh.Write("in", r)
		}
		mh.Sleep(1)
	}
}

func crunch(n int) int {
	var extra int
	total := 0
	var weights []int
	for i := 0; i < n; i++ {
		weights = append(weights, i+1)
	}
	for idx, ww := range weights {
		switch idx % 3 {
		case 0:
			total += ww * 2
		case 1:
			total += ww
		default:
			total -= ww
		}
	}
	mh.ReconfigPoint("R")
	mh.Read("extra", &extra)
	for _, ww := range weights {
		if ww > n/2 {
			total += extra
			continue
		}
		total++
	}
	return total
}
`
	out := prepare(t, src, Options{Mode: CaptureLive})

	b := bus.New()
	spec := bus.InstanceSpec{
		Name: "w", Module: "rich",
		Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.InOut}, {Name: "extra", Dir: bus.In}},
	}
	if err := b.AddInstance(spec); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(bus.InstanceSpec{
		Name:       "drv",
		Interfaces: []bus.IfaceSpec{{Name: "io", Dir: bus.InOut}, {Name: "ex", Dir: bus.Out}},
	}); err != nil {
		t.Fatal(err)
	}
	for _, bd := range [][2]bus.Endpoint{
		{{Instance: "drv", Interface: "io"}, {Instance: "w", Interface: "in"}},
		{{Instance: "drv", Interface: "ex"}, {Instance: "w", Interface: "extra"}},
	} {
		if err := b.AddBinding(bd[0], bd[1]); err != nil {
			t.Fatal(err)
		}
	}
	drvPort, err := b.Attach("drv")
	if err != nil {
		t.Fatal(err)
	}
	drv := mh.New(drvPort)
	drv.Init()

	launch := func(name string) chan error {
		port, err := b.Attach(name)
		if err != nil {
			t.Fatal(err)
		}
		rt := mh.New(port, mh.WithSleepUnit(time.Microsecond))
		in := interp.New(out.Prog, out.Info, rt)
		done := make(chan error, 1)
		go func() {
			_, err := in.Run()
			done <- err
		}()
		return done
	}
	done := launch("w")

	// Reference answer without reconfiguration.
	expected := func(n, extra int) int {
		total := 0
		var weights []int
		for i := 0; i < n; i++ {
			weights = append(weights, i+1)
		}
		for idx, ww := range weights {
			switch idx % 3 {
			case 0:
				total += ww * 2
			case 1:
				total += ww
			default:
				total -= ww
			}
		}
		for _, ww := range weights {
			if ww > n/2 {
				total += extra
				continue
			}
			total++
		}
		return total
	}

	drv.Write("io", 6)
	drv.Write("ex", 5)
	var r int
	drv.Read("io", &r)
	if r != expected(6, 5) {
		t.Fatalf("baseline = %d, want %d", r, expected(6, 5))
	}

	// Interrupt mid-call: the module blocks reading "extra" at R.
	drv.Write("io", 9)
	time.Sleep(30 * time.Millisecond)
	if err := b.SignalReconfig("w"); err != nil {
		t.Fatal(err)
	}
	drv.Write("ex", 11) // consumed; flag tested at R's next execution...
	// R executes once per call; feed another request so the pending flag
	// triggers at its R.
	drv.Read("io", &r)
	if r != expected(9, 11) {
		t.Fatalf("pre-capture answer = %d, want %d", r, expected(9, 11))
	}
	drv.Write("io", 4)
	owner, err := b.AwaitDivulged("w", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("module did not exit")
	}

	// Clone and finish: the weights slice (built before R) must survive.
	if err := b.AddInstance(bus.InstanceSpec{
		Name: "w2", Module: "rich", Status: bus.StatusClone, Interfaces: spec.Interfaces,
	}); err != nil {
		t.Fatal(err)
	}
	edits := []bus.BindEdit{}
	for _, pair := range [][2]string{{"io", "in"}, {"ex", "extra"}} {
		from := bus.Endpoint{Instance: "drv", Interface: pair[0]}
		edits = append(edits,
			bus.BindEdit{Op: "del", From: from, To: bus.Endpoint{Instance: "w", Interface: pair[1]}},
			bus.BindEdit{Op: "add", From: from, To: bus.Endpoint{Instance: "w2", Interface: pair[1]}},
			bus.BindEdit{Op: "cq", From: bus.Endpoint{Instance: "w", Interface: pair[1]}, To: bus.Endpoint{Instance: "w2", Interface: pair[1]}},
		)
	}
	if err := b.Rebind(edits); err != nil {
		t.Fatal(err)
	}
	if err := b.InstallState("w2", owner.Data()); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteInstance("w"); err != nil {
		t.Fatal(err)
	}
	launch("w2")

	drv.Write("ex", 3)
	drv.Read("io", &r)
	if err := drv.Err(); err != nil {
		t.Fatal(err)
	}
	if r != expected(4, 3) {
		t.Errorf("migrated answer = %d, want %d", r, expected(4, 3))
	}
	b.DeleteInstance("w2")
}
