package transform

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"

	"repro/internal/callgraph"
	"repro/internal/flatten"
	"repro/internal/lang"
	"repro/internal/liveness"
)

// weaver inserts the capture and restore blocks into flattened procedures.
type weaver struct {
	prog *lang.Program
	info *lang.Info
	rg   *callgraph.RGraph
	live map[string]*liveness.Analysis
	opts Options
	out  *Output

	keepLabels map[string]map[string]bool
}

func (w *weaver) weaveFunc(name string) error {
	if w.keepLabels == nil {
		w.keepLabels = map[string]map[string]bool{}
	}
	fn := w.prog.Funcs[name]
	isMain := name == "main"
	labels := collectLabels(fn.Decl)
	a := w.live[name]
	edges := w.rg.EdgesFrom(name)

	capSet, err := w.captureSet(name, a, edges)
	if err != nil {
		return err
	}
	format := "l"
	for _, cv := range capSet {
		r, ok := lang.FormatRune(cv.Type)
		if !ok {
			return fmt.Errorf("transform: %s: variable %s has uncapturable type %s", name, cv.Name, cv.Type)
		}
		format += string(r)
	}

	zeros, err := zeroReturns(fn)
	if err != nil {
		return err
	}

	// Location variable.
	locName := "mhLoc"
	taken := map[string]bool{}
	for _, v := range w.info.FuncVars[name] {
		taken[v.Name] = true
	}
	for n := 2; taken[locName]; n++ {
		locName = "mhLoc" + strconv.Itoa(n)
	}

	// Resume label per edge.
	edgeLabel := map[int]string{}
	keep := map[string]bool{}
	for _, e := range edges {
		if e.IsReconfig() {
			if labels[e.Point.Label] {
				return fmt.Errorf("transform: %s: reconfiguration point label %s collides with an existing label", name, e.Point.Label)
			}
			labels[e.Point.Label] = true
			edgeLabel[e.Index] = e.Point.Label
		} else {
			l := "L" + strconv.Itoa(e.Index)
			for labels[l] {
				l = "mh" + l
			}
			labels[l] = true
			edgeLabel[e.Index] = l
		}
		keep[edgeLabel[e.Index]] = true
	}
	w.keepLabels[name] = keep

	// Statement → edge mapping.
	markerEdge := map[ast.Stmt]callgraph.Edge{}
	for _, e := range edges {
		if e.IsReconfig() {
			markerEdge[ast.Stmt(e.Point.Stmt)] = e
		}
	}

	// Split hoisted declarations from the executable body.
	body := fn.Decl.Body.List
	var decls []ast.Stmt
	for len(body) > 0 {
		if _, ok := body[0].(*ast.DeclStmt); !ok {
			break
		}
		decls = append(decls, body[0])
		body = body[1:]
	}
	decls = append(decls, &ast.DeclStmt{Decl: &ast.GenDecl{
		Tok: token.VAR,
		Specs: []ast.Spec{&ast.ValueSpec{
			Names: []*ast.Ident{ast.NewIdent(locName)},
			Type:  ast.NewIdent("int"),
		}},
	}})

	// Weave the body.
	var woven []ast.Stmt
	var pendingLabel string
	emit := func(s ast.Stmt) {
		if pendingLabel != "" {
			s = &ast.LabeledStmt{Label: ast.NewIdent(pendingLabel), Stmt: s}
			pendingLabel = ""
		}
		woven = append(woven, s)
	}
	wovenEdges := 0
	for _, s := range body {
		// Unwrap label chain.
		inner := s
		var wrappers []string
		for {
			ls, ok := inner.(*ast.LabeledStmt)
			if !ok {
				break
			}
			wrappers = append(wrappers, ls.Label.Name)
			inner = ls.Stmt
		}

		if e, ok := markerEdge[inner]; ok {
			// Replace the marker with the reconfiguration-point capture
			// block (Figure 7, reconfiguration edge); the point label
			// moves onto the following statement.
			block := w.reconfigCaptureBlock(name, format, e.Index, capSet, isMain, zeros)
			for i := len(wrappers) - 1; i >= 0; i-- {
				block = &ast.LabeledStmt{Label: ast.NewIdent(wrappers[i]), Stmt: block}
			}
			emit(block)
			pendingLabel = edgeLabel[e.Index]
			wovenEdges++
			continue
		}

		if call := stmtCall(inner, w.prog); call != nil {
			if e, ok := w.rg.EdgeForCall(call); ok && e.Caller == name {
				// Label the call statement Li (the restore block's goto
				// re-issues the call, Figure 4 style) and install the
				// capture block immediately after it (Figure 7).
				labeled := ast.Stmt(&ast.LabeledStmt{Label: ast.NewIdent(edgeLabel[e.Index]), Stmt: inner})
				for i := len(wrappers) - 1; i >= 0; i-- {
					labeled = &ast.LabeledStmt{Label: ast.NewIdent(wrappers[i]), Stmt: labeled}
				}
				emit(labeled)
				emit(w.callCaptureBlock(name, format, e.Index, capSet, isMain, zeros))
				wovenEdges++
				continue
			}
		}
		emit(s)
	}
	if pendingLabel != "" {
		emit(&ast.EmptyStmt{})
	}
	if wovenEdges != len(edges) {
		return fmt.Errorf("transform: %s: wove %d of %d reconfiguration edges (instrumented call not at statement position?)", name, wovenEdges, len(edges))
	}

	// Restore block (Figure 8), preceded in main by the clone check.
	var prologue []ast.Stmt
	if isMain {
		prologue = append(prologue, &ast.IfStmt{
			Cond: &ast.BinaryExpr{
				X:  mhCallExpr("Status"),
				Op: token.EQL,
				Y:  &ast.BasicLit{Kind: token.STRING, Value: `"clone"`},
			},
			Body: &ast.BlockStmt{List: []ast.Stmt{mhCall("Decode")}},
		})
	}
	prologue = append(prologue, w.restoreBlock(name, format, locName, capSet, edges, edgeLabel))

	fn.Decl.Body.List = append(append(decls, prologue...), woven...)

	idxs := make([]int, 0, len(edges))
	for _, e := range edges {
		idxs = append(idxs, e.Index)
	}
	w.out.Funcs[name] = &FuncReport{Name: name, Captured: capSet, Format: format, Edges: idxs}
	return nil
}

// captureSet derives the procedure's captured variables per the options.
func (w *weaver) captureSet(name string, a *liveness.Analysis, edges []callgraph.Edge) ([]CapturedVar, error) {
	vars := w.info.FuncVars[name]

	edgeIdx := func(e callgraph.Edge) (int, error) {
		var target ast.Stmt
		if e.IsReconfig() {
			target = e.Point.Stmt
		} else {
			for _, s := range a.Stmts {
				if stmtCall(s, w.prog) == e.Call {
					target = s
					break
				}
			}
		}
		i := a.IndexOf(target)
		if i < 0 {
			return 0, fmt.Errorf("transform: %s: cannot locate edge %d in flattened body", name, e.Index)
		}
		return i, nil
	}

	// Union of live-at-resume sets (needed for pointer-local validation in
	// every mode).
	liveUnion := map[string]bool{}
	for _, e := range edges {
		i, err := edgeIdx(e)
		if err != nil {
			return nil, err
		}
		for _, v := range a.LiveAfter(i) {
			liveUnion[v] = true
		}
	}

	selected := map[string]bool{}
	switch w.opts.Mode {
	case CaptureLive:
		selected = liveUnion
	case CaptureSpec:
		specVars, ok := w.specVarsFor(name, edges)
		if ok {
			for _, v := range specVars {
				found := false
				for _, d := range vars {
					if d.Name == v {
						found = true
						break
					}
				}
				if !found {
					return nil, fmt.Errorf("transform: %s: specification names unknown state variable %s", name, v)
				}
				selected[v] = true
			}
			break
		}
		fallthrough
	default: // CaptureAll
		for _, d := range vars {
			selected[d.Name] = true
		}
	}

	var out []CapturedVar
	for _, d := range vars {
		if !selected[d.Name] {
			continue
		}
		if pt, isPtr := d.Type.(lang.Pointer); isPtr {
			if !d.IsParam {
				if liveUnion[d.Name] {
					return nil, fmt.Errorf("transform: %s: pointer-typed local %s is live at a reconfiguration edge; addresses cannot enter the abstract state (paper §3)", name, d.Name)
				}
				continue // dead pointer local: safely omitted
			}
			out = append(out, CapturedVar{Name: d.Name, Type: pt, Pointer: true})
			continue
		}
		out = append(out, CapturedVar{Name: d.Name, Type: d.Type})
	}
	return out, nil
}

// specVarsFor returns the union of the specification-declared variable
// lists for the reconfiguration points of this procedure.
func (w *weaver) specVarsFor(name string, edges []callgraph.Edge) ([]string, bool) {
	var out []string
	found := false
	seen := map[string]bool{}
	for _, e := range edges {
		if !e.IsReconfig() {
			continue
		}
		vars, ok := w.opts.PointVars[e.Point.Label]
		if !ok {
			continue
		}
		found = true
		for _, v := range vars {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out, found
}

// stmtCall extracts the instrumented-candidate call from a flat statement.
func stmtCall(s ast.Stmt, prog *lang.Program) *ast.CallExpr {
	switch st := s.(type) {
	case *ast.LabeledStmt:
		return stmtCall(st.Stmt, prog)
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if _, isFn := prog.Funcs[id.Name]; isFn {
					return call
				}
			}
		}
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					if _, isFn := prog.Funcs[id.Name]; isFn {
						return call
					}
				}
			}
		}
	}
	return nil
}

func zeroReturns(fn *lang.Func) ([]ast.Expr, error) {
	var out []ast.Expr
	for _, rt := range fn.Results {
		z := flatten.ZeroExpr(rt)
		if z == nil {
			return nil, fmt.Errorf("transform: %s: result type %s has no expressible zero value", fn.Name, rt)
		}
		out = append(out, z)
	}
	return out, nil
}

// ---- block constructors ----

func mhCallExpr(name string, args ...ast.Expr) *ast.CallExpr {
	return &ast.CallExpr{
		Fun:  &ast.SelectorExpr{X: ast.NewIdent(lang.MHName), Sel: ast.NewIdent(name)},
		Args: args,
	}
}

func mhCall(name string, args ...ast.Expr) ast.Stmt {
	return &ast.ExprStmt{X: mhCallExpr(name, args...)}
}

func strLit(s string) ast.Expr {
	return &ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(s)}
}

func intLit(i int) ast.Expr {
	return &ast.BasicLit{Kind: token.INT, Value: strconv.Itoa(i)}
}

// captureArgs builds the value expressions for mh.Capture: pointer
// parameters are captured by pointee (*rp), everything else by name.
func captureArgs(fnName, format string, edge int, capSet []CapturedVar) []ast.Expr {
	args := []ast.Expr{strLit(fnName), strLit(format), intLit(edge)}
	for _, cv := range capSet {
		if cv.Pointer {
			args = append(args, &ast.StarExpr{X: ast.NewIdent(cv.Name)})
		} else {
			args = append(args, ast.NewIdent(cv.Name))
		}
	}
	return args
}

// callCaptureBlock builds Figure 7's capture block for a call edge:
//
//	if mh.CaptureStack() {
//	    mh.Capture(fn, format, i, vars...)
//	    mh.Encode()   // main only
//	    return zeros
//	}
func (w *weaver) callCaptureBlock(fnName, format string, edge int, capSet []CapturedVar, isMain bool, zeros []ast.Expr) ast.Stmt {
	var body []ast.Stmt
	body = append(body, &ast.ExprStmt{X: mhCallExpr("Capture", captureArgs(fnName, format, edge, capSet)...)})
	if isMain {
		body = append(body, mhCall("Encode"))
	}
	body = append(body, &ast.ReturnStmt{Results: zeros})
	return &ast.IfStmt{Cond: mhCallExpr("CaptureStack"), Body: &ast.BlockStmt{List: body}}
}

// reconfigCaptureBlock builds Figure 7's capture block for a
// reconfiguration edge:
//
//	if mh.Reconfig() {
//	    mh.ClearReconfig()
//	    mh.SetCaptureStack(true)
//	    mh.Capture(fn, format, j, vars...)
//	    mh.Encode()   // main only
//	    return zeros
//	}
func (w *weaver) reconfigCaptureBlock(fnName, format string, edge int, capSet []CapturedVar, isMain bool, zeros []ast.Expr) ast.Stmt {
	var body []ast.Stmt
	body = append(body,
		mhCall("ClearReconfig"),
		mhCall("SetCaptureStack", ast.NewIdent("true")),
		&ast.ExprStmt{X: mhCallExpr("Capture", captureArgs(fnName, format, edge, capSet)...)},
	)
	if isMain {
		body = append(body, mhCall("Encode"))
	}
	body = append(body, &ast.ReturnStmt{Results: zeros})
	return &ast.IfStmt{Cond: mhCallExpr("Reconfig"), Body: &ast.BlockStmt{List: body}}
}

// restoreBlock builds Figure 8's restore block:
//
//	if mh.Restoring() {
//	    mh.Restore(fn, format, &mhLoc, ptrs...)
//	    if mhLoc == i { goto Li }
//	    if mhLoc == j { mh.SetRestoring(false); mh.InstallSignalHandler(); goto R }
//	}
func (w *weaver) restoreBlock(fnName, format, locName string, capSet []CapturedVar, edges []callgraph.Edge, edgeLabel map[int]string) ast.Stmt {
	restoreArgs := []ast.Expr{
		strLit(fnName), strLit(format),
		&ast.UnaryExpr{Op: token.AND, X: ast.NewIdent(locName)},
	}
	for _, cv := range capSet {
		if cv.Pointer {
			restoreArgs = append(restoreArgs, ast.NewIdent(cv.Name))
		} else {
			restoreArgs = append(restoreArgs, &ast.UnaryExpr{Op: token.AND, X: ast.NewIdent(cv.Name)})
		}
	}
	body := []ast.Stmt{&ast.ExprStmt{X: mhCallExpr("Restore", restoreArgs...)}}
	for _, e := range edges {
		cond := &ast.BinaryExpr{X: ast.NewIdent(locName), Op: token.EQL, Y: intLit(e.Index)}
		var dispatch []ast.Stmt
		if e.IsReconfig() {
			dispatch = append(dispatch,
				mhCall("SetRestoring", ast.NewIdent("false")),
				mhCall("InstallSignalHandler"),
			)
		}
		dispatch = append(dispatch, &ast.BranchStmt{Tok: token.GOTO, Label: ast.NewIdent(edgeLabel[e.Index])})
		body = append(body, &ast.IfStmt{Cond: cond, Body: &ast.BlockStmt{List: dispatch}})
	}
	return &ast.IfStmt{Cond: mhCallExpr("Restoring"), Body: &ast.BlockStmt{List: body}}
}
