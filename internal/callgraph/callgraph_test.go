package callgraph

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lang"
)

// figure6Src mirrors the sample program of Figure 6: main calls a twice and
// c once; a calls b; a contains R1 and b contains R2; c is reachable from
// main but cannot reach a reconfiguration point, so it is excluded from the
// reconfiguration graph; orphan is unreachable entirely.
const figure6Src = `package sample

func main() {
	a(1)
	c()
	a(2)
}

func a(x int) {
	mh.ReconfigPoint("R1")
	b(x)
}

func b(x int) {
	if x > 0 {
		mh.ReconfigPoint("R2")
	}
}

func c() {
	var y int
	y = 1
	_ = y
}

func orphan() {
	c()
}
`

func load(t *testing.T, src string) (*lang.Program, *lang.Info, *Graph) {
	t.Helper()
	prog, err := lang.ParseSource("mod.go", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := lang.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, info, Build(prog)
}

func TestStaticCallGraph(t *testing.T) {
	_, _, g := load(t, figure6Src)
	if !reflect.DeepEqual(g.Nodes, []string{"main", "a", "b", "c", "orphan"}) {
		t.Errorf("nodes = %v", g.Nodes)
	}
	mainCalls := g.CallsFrom("main")
	if len(mainCalls) != 3 {
		t.Fatalf("main has %d call sites, want 3", len(mainCalls))
	}
	if mainCalls[0].Callee != "a" || mainCalls[1].Callee != "c" || mainCalls[2].Callee != "a" {
		t.Errorf("main calls = %+v", mainCalls)
	}
	if got := g.Callees("main"); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Errorf("Callees(main) = %v", got)
	}
	if got := g.Callees("b"); got != nil {
		t.Errorf("Callees(b) = %v", got)
	}
	for _, c := range g.Calls {
		if c.Line == 0 {
			t.Errorf("call %s->%s has no line", c.Caller, c.Callee)
		}
	}
}

func TestReachability(t *testing.T) {
	_, _, g := load(t, figure6Src)
	from := g.ReachableFrom("main")
	for _, n := range []string{"main", "a", "b", "c"} {
		if !from[n] {
			t.Errorf("%s not reachable from main", n)
		}
	}
	if from["orphan"] {
		t.Error("orphan reachable from main")
	}
	to := g.CanReach(map[string]bool{"a": true, "b": true})
	if !to["main"] || !to["a"] || !to["b"] {
		t.Errorf("CanReach = %v", to)
	}
	if to["c"] || to["orphan"] {
		t.Errorf("CanReach includes excluded nodes: %v", to)
	}
	if len(g.ReachableFrom("ghost")) != 0 {
		t.Error("ReachableFrom(ghost) not empty")
	}
}

func TestRecursive(t *testing.T) {
	_, _, g := load(t, `package p
func main() { f(1); g(); }
func f(n int) { if n > 0 { f(n - 1) } }
func g() { h() }
func h() { g() }
`)
	if !g.Recursive("f") {
		t.Error("f not detected recursive")
	}
	if !g.Recursive("g") || !g.Recursive("h") {
		t.Error("mutual recursion not detected")
	}
	if g.Recursive("main") {
		t.Error("main detected recursive")
	}
}

func TestReconfigurationGraph(t *testing.T) {
	_, info, g := load(t, figure6Src)
	rg, err := BuildReconfig(g, info)
	if err != nil {
		t.Fatal(err)
	}
	// c and orphan are excluded: c cannot reach a point, orphan is
	// unreachable from main.
	if !reflect.DeepEqual(rg.Nodes, []string{"main", "a", "b"}) {
		t.Errorf("nodes = %v", rg.Nodes)
	}
	// Edges, numbered: main->a (first call), main->a (second call),
	// a->reconfig (R1), a->b, b->reconfig (R2). The main->c call edge is
	// not in the graph.
	if len(rg.Edges) != 5 {
		t.Fatalf("edges = %d, want 5:\n%s", len(rg.Edges), rg)
	}
	type shape struct {
		caller, callee, point string
	}
	var got []shape
	for _, e := range rg.Edges {
		s := shape{caller: e.Caller, callee: e.Callee}
		if e.IsReconfig() {
			s.point = e.Point.Label
		}
		got = append(got, s)
	}
	want := []shape{
		{"main", "a", ""},
		{"main", "a", ""},
		{"a", ReconfigNode, "R1"},
		{"a", "b", ""},
		{"b", ReconfigNode, "R2"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("edges = %+v\nwant %+v", got, want)
	}
	for i, e := range rg.Edges {
		if e.Index != i+1 {
			t.Errorf("edge %d has index %d", i, e.Index)
		}
	}

	// Two edges from main to a — "if procedure main calls a in two
	// different statements, there are two edges from main to a".
	fromMain := rg.EdgesFrom("main")
	if len(fromMain) != 2 {
		t.Errorf("EdgesFrom(main) = %d", len(fromMain))
	}
	if !rg.Instrumented("a") || rg.Instrumented("c") {
		t.Error("Instrumented() wrong")
	}

	// EdgeForCall resolves a call expression to its numbered edge.
	firstCall := g.CallsFrom("main")[0].Expr
	e, ok := rg.EdgeForCall(firstCall)
	if !ok || e.Index != 1 {
		t.Errorf("EdgeForCall = %+v %t", e, ok)
	}
	if _, ok := rg.EdgeForCall(nil); ok {
		t.Error("EdgeForCall(nil) found an edge")
	}
}

func TestReconfigGraphMonitor(t *testing.T) {
	// The monitor example: edges 1 (main->compute at L1), 2 (main->compute
	// at L2), 3 (compute->compute), 4 (compute->reconfig) — exactly the
	// integers Figure 4 passes to mh_capture.
	_, info, g := load(t, `package compute

func main() {
	var n int
	var response float64
	mh.Init()
	for {
		for mh.QueryIfMsgs("display") {
			mh.Read("display", &n)
			compute(n, n, &response)
			mh.Write("display", response)
		}
		if mh.QueryIfMsgs("sensor") {
			compute(1, 1, &response)
		}
		mh.Sleep(2)
	}
}

func compute(num int, n int, rp *float64) {
	var temper int
	if n <= 0 {
		*rp = 0.0
		return
	}
	compute(num, n-1, rp)
	mh.ReconfigPoint("R")
	mh.Read("sensor", &temper)
	*rp = *rp + float64(temper)/float64(num)
}
`)
	rg, err := BuildReconfig(g, info)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rg.Nodes, []string{"main", "compute"}) {
		t.Errorf("nodes = %v", rg.Nodes)
	}
	if len(rg.Edges) != 4 {
		t.Fatalf("edges:\n%s", rg)
	}
	if rg.Edges[0].Caller != "main" || rg.Edges[1].Caller != "main" {
		t.Error("edges 1,2 should be main's calls")
	}
	if rg.Edges[2].Caller != "compute" || rg.Edges[2].Callee != "compute" {
		t.Error("edge 3 should be the recursion")
	}
	if !rg.Edges[3].IsReconfig() || rg.Edges[3].Point.Label != "R" {
		t.Error("edge 4 should be the reconfiguration edge")
	}
}

func TestBuildReconfigErrors(t *testing.T) {
	_, info, g := load(t, `package p
func main() { f() }
func f() {}
`)
	if _, err := BuildReconfig(g, info); err == nil {
		t.Error("no points accepted")
	}

	_, info2, g2 := load(t, `package p
func main() {}
func unreachable() { mh.ReconfigPoint("R") }
`)
	if _, err := BuildReconfig(g2, info2); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("unreachable point: %v", err)
	}
}

func TestDOTOutput(t *testing.T) {
	_, info, g := load(t, figure6Src)
	dot := g.DOT()
	for _, want := range []string{`"main" -> "a"`, `"main" -> "c"`, `"a" -> "b"`, `"orphan" -> "c"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("static DOT missing %s:\n%s", want, dot)
		}
	}
	rg, err := BuildReconfig(g, info)
	if err != nil {
		t.Fatal(err)
	}
	rdot := rg.DOT()
	for _, want := range []string{`"a" -> "reconfig"`, `label="(3, R1)"`, `label="(5, R2)"`, "doublecircle"} {
		if !strings.Contains(rdot, want) {
			t.Errorf("reconfig DOT missing %s:\n%s", want, rdot)
		}
	}
	if strings.Contains(rdot, `"c"`) {
		t.Error("reconfig DOT includes excluded node c")
	}
	// Deterministic.
	if rg.DOT() != rdot || g.DOT() != dot {
		t.Error("DOT output not deterministic")
	}
}

func TestRGraphString(t *testing.T) {
	_, info, g := load(t, figure6Src)
	rg, err := BuildReconfig(g, info)
	if err != nil {
		t.Fatal(err)
	}
	s := rg.String()
	for _, want := range []string{"nodes: main a b", "edge 1: main -> a", "edge 3: a -> reconfig (point R1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestCyclicSCCs(t *testing.T) {
	_, _, g := load(t, `package p

func main() {
	solo()
	ping(3)
	deep(2)
}

func solo() { solo() }

func ping(n int) {
	if n > 0 {
		pong(n - 1)
	}
}

func pong(n int) { ping(n) }

func deep(n int) {
	mid(n)
}

func mid(n int) {
	if n > 0 {
		deep(n - 1)
	}
	leaf()
}

func leaf() {}
`)
	got := g.CyclicSCCs()
	want := [][]string{
		{"solo"},
		{"ping", "pong"},
		{"deep", "mid"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CyclicSCCs = %v, want %v", got, want)
	}
}

func TestCyclicSCCsAcyclic(t *testing.T) {
	_, _, g := load(t, figure6Src)
	if got := g.CyclicSCCs(); len(got) != 0 {
		t.Errorf("acyclic graph reported cycles: %v", got)
	}
}

func TestCyclicSCCsDeepChain(t *testing.T) {
	// A long call chain ending in a self-loop: the iterative Tarjan must
	// neither overflow nor mis-propagate low links through the chain.
	var b strings.Builder
	b.WriteString("package p\n\nfunc main() { f0() }\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "func f%d() { f%d() }\n", i, i+1)
	}
	b.WriteString("func f200() { f200() }\n")
	_, _, g := load(t, b.String())
	got := g.CyclicSCCs()
	if !reflect.DeepEqual(got, [][]string{{"f200"}}) {
		t.Errorf("CyclicSCCs = %v, want [[f200]]", got)
	}
}
