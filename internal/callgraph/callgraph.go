// Package callgraph builds the static call graph of a module program and
// derives the reconfiguration graph of Section 3 / Figure 6.
//
// The static call graph has a node per procedure and a directed edge per
// call relationship. "At any particular time during program execution, the
// frames contained in the activation record stack correspond to a path in
// the static call graph originating at node main" — so the graph defines
// every possible activation-record stack.
//
// The reconfiguration graph is the sub-call-graph restricted to procedures
// that lie on a path from main to a procedure containing a reconfiguration
// point, augmented with one edge per *call site* (a procedure calling
// another twice contributes two edges), one reconfig node, and one edge
// from each reconfiguration point to it. Edges are numbered consecutively;
// each edge (i, Si) names the integer passed to mh_capture and the
// statement that receives the capture block.
package callgraph

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"

	"repro/internal/lang"
)

// Call is one call site in the static call graph.
type Call struct {
	Caller string
	Callee string
	Expr   *ast.CallExpr
	Line   int
}

// Graph is the static call graph of a module program.
type Graph struct {
	Prog *lang.Program
	// Nodes lists every function, in declaration order.
	Nodes []string
	// Calls lists every call site, in declaration-then-source order.
	Calls []Call
}

// Build constructs the static call graph. The program must already be
// checked (Build itself only needs the parse).
func Build(prog *lang.Program) *Graph {
	g := &Graph{Prog: prog, Nodes: append([]string(nil), prog.FuncOrder...)}
	for _, name := range prog.FuncOrder {
		fn := prog.Funcs[name]
		for _, call := range lang.CallTargets(prog, fn) {
			callee := call.Fun.(*ast.Ident).Name
			g.Calls = append(g.Calls, Call{
				Caller: name,
				Callee: callee,
				Expr:   call,
				Line:   prog.Fset.Position(call.Pos()).Line,
			})
		}
	}
	return g
}

// CallsFrom returns the call sites within the named function, in source
// order.
func (g *Graph) CallsFrom(name string) []Call {
	var out []Call
	for _, c := range g.Calls {
		if c.Caller == name {
			out = append(out, c)
		}
	}
	return out
}

// Callees returns the distinct callees of a function, in first-call order.
func (g *Graph) Callees(name string) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range g.Calls {
		if c.Caller == name && !seen[c.Callee] {
			seen[c.Callee] = true
			out = append(out, c.Callee)
		}
	}
	return out
}

// ReachableFrom returns the set of functions reachable from start
// (including start).
func (g *Graph) ReachableFrom(start string) map[string]bool {
	out := map[string]bool{}
	var visit func(string)
	visit = func(n string) {
		if out[n] {
			return
		}
		out[n] = true
		for _, c := range g.Calls {
			if c.Caller == n {
				visit(c.Callee)
			}
		}
	}
	if _, ok := g.Prog.Funcs[start]; ok {
		visit(start)
	}
	return out
}

// CanReach returns the set of functions from which any of the targets is
// reachable (including the targets themselves).
func (g *Graph) CanReach(targets map[string]bool) map[string]bool {
	out := map[string]bool{}
	for t := range targets {
		if _, ok := g.Prog.Funcs[t]; ok {
			out[t] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, c := range g.Calls {
			if out[c.Callee] && !out[c.Caller] {
				out[c.Caller] = true
				changed = true
			}
		}
	}
	return out
}

// Recursive reports whether the named function participates in a cycle
// (including direct self-recursion).
func (g *Graph) Recursive(name string) bool {
	reach := g.ReachableFrom(name)
	for _, c := range g.Calls {
		if c.Callee == name && reach[c.Caller] {
			return true
		}
	}
	return false
}

// CyclicSCCs returns the strongly connected components of the call graph
// that contain a cycle: components with more than one member, plus
// single-function components with a self-call. Members are listed in
// declaration order and components are ordered by their first member's
// declaration position, so the output is deterministic.
func (g *Graph) CyclicSCCs() [][]string {
	order := map[string]int{}
	for i, n := range g.Nodes {
		order[n] = i
	}
	succs := map[string][]string{}
	for _, c := range g.Calls {
		if _, ok := order[c.Callee]; ok {
			succs[c.Caller] = append(succs[c.Caller], c.Callee)
		}
	}

	// Tarjan's algorithm, iterative to keep deep chains off the Go stack.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string

	type frame struct {
		node string
		succ int
	}
	for _, root := range g.Nodes {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{node: root}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			n := fr.node
			if fr.succ == 0 {
				index[n] = next
				low[n] = next
				next++
				stack = append(stack, n)
				onStack[n] = true
			}
			advanced := false
			for fr.succ < len(succs[n]) {
				m := succs[n][fr.succ]
				fr.succ++
				if _, seen := index[m]; !seen {
					work = append(work, frame{node: m})
					advanced = true
					break
				}
				if onStack[m] && index[m] < low[n] {
					low[n] = index[m]
				}
			}
			if advanced {
				continue
			}
			// All successors done: pop and propagate the low link.
			if low[n] == index[n] {
				var comp []string
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					comp = append(comp, m)
					if m == n {
						break
					}
				}
				if g.sccCyclic(comp) {
					sort.Slice(comp, func(i, j int) bool { return order[comp[i]] < order[comp[j]] })
					sccs = append(sccs, comp)
				}
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].node
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return order[sccs[i][0]] < order[sccs[j][0]] })
	return sccs
}

// sccCyclic reports whether a component contains a cycle: any component of
// two or more nodes does; a singleton only if it calls itself.
func (g *Graph) sccCyclic(comp []string) bool {
	if len(comp) > 1 {
		return true
	}
	for _, c := range g.Calls {
		if c.Caller == comp[0] && c.Callee == comp[0] {
			return true
		}
	}
	return false
}

// ReconfigNode is the name of the synthetic node every reconfiguration
// point has an edge to.
const ReconfigNode = "reconfig"

// Edge is one numbered edge of the reconfiguration graph: either a call
// edge (i, Si) or a reconfiguration edge (j, R).
type Edge struct {
	Index  int
	Caller string
	// Callee is the called procedure for a call edge, or ReconfigNode.
	Callee string
	// Call is the call site Si (nil for reconfiguration edges).
	Call *ast.CallExpr
	// Point is the reconfiguration point (nil for call edges).
	Point *lang.Point
	Line  int
}

// IsReconfig reports whether this is an edge to the reconfig node.
func (e Edge) IsReconfig() bool { return e.Point != nil }

// RGraph is the reconfiguration graph.
type RGraph struct {
	Graph *Graph
	// Nodes lists the instrumented procedures, in declaration order: every
	// procedure on a path from main to a reconfiguration point.
	Nodes []string
	// Edges are numbered consecutively from 1, in declaration-then-source
	// order, matching the integers mh_capture records.
	Edges []Edge
}

// BuildReconfig derives the reconfiguration graph from a checked program.
// It fails if the program declares no reconfiguration points, or if a point
// sits in a procedure unreachable from main.
func BuildReconfig(g *Graph, info *lang.Info) (*RGraph, error) {
	if len(info.Points) == 0 {
		return nil, fmt.Errorf("callgraph: program declares no reconfiguration points")
	}
	pointFuncs := map[string]bool{}
	for _, pt := range info.Points {
		pointFuncs[pt.Func] = true
	}
	fromMain := g.ReachableFrom("main")
	for _, pt := range info.Points {
		if !fromMain[pt.Func] {
			return nil, fmt.Errorf("callgraph: reconfiguration point %s is in %s, which is unreachable from main", pt.Label, pt.Func)
		}
	}
	toPoint := g.CanReach(pointFuncs)

	inGraph := map[string]bool{}
	for name := range fromMain {
		if toPoint[name] {
			inGraph[name] = true
		}
	}

	rg := &RGraph{Graph: g}
	for _, name := range g.Prog.FuncOrder {
		if inGraph[name] {
			rg.Nodes = append(rg.Nodes, name)
		}
	}

	// Number the edges per node in source order: call edges to in-graph
	// callees, and reconfiguration edges, interleaved by line.
	type protoEdge struct {
		caller string
		callee string
		call   *ast.CallExpr
		point  *lang.Point
		pos    int
	}
	var protos []protoEdge
	for _, name := range rg.Nodes {
		for _, c := range g.CallsFrom(name) {
			if inGraph[c.Callee] {
				protos = append(protos, protoEdge{caller: name, callee: c.Callee, call: c.Expr, pos: int(c.Expr.Pos())})
			}
		}
		for _, pt := range info.PointsIn(name) {
			p := pt
			protos = append(protos, protoEdge{caller: name, callee: ReconfigNode, point: &p, pos: int(pt.Call.Pos())})
		}
	}
	// Stable order: function declaration order (already grouped), then
	// source position within the function.
	sort.SliceStable(protos, func(i, j int) bool {
		if protos[i].caller != protos[j].caller {
			return nodeIndex(rg.Nodes, protos[i].caller) < nodeIndex(rg.Nodes, protos[j].caller)
		}
		return protos[i].pos < protos[j].pos
	})
	for i, p := range protos {
		line := 0
		if p.call != nil {
			line = g.Prog.Fset.Position(p.call.Pos()).Line
		} else {
			line = g.Prog.Fset.Position(p.point.Call.Pos()).Line
		}
		rg.Edges = append(rg.Edges, Edge{
			Index:  i + 1,
			Caller: p.caller,
			Callee: p.callee,
			Call:   p.call,
			Point:  p.point,
			Line:   line,
		})
	}
	return rg, nil
}

func nodeIndex(nodes []string, name string) int {
	for i, n := range nodes {
		if n == name {
			return i
		}
	}
	return len(nodes)
}

// EdgesFrom returns the numbered edges originating at the named node.
func (rg *RGraph) EdgesFrom(name string) []Edge {
	var out []Edge
	for _, e := range rg.Edges {
		if e.Caller == name {
			out = append(out, e)
		}
	}
	return out
}

// EdgeForCall returns the edge whose call site is the given expression.
func (rg *RGraph) EdgeForCall(call *ast.CallExpr) (Edge, bool) {
	if call == nil {
		return Edge{}, false
	}
	for _, e := range rg.Edges {
		if e.Call == call {
			return e, true
		}
	}
	return Edge{}, false
}

// Instrumented reports whether the named procedure is in the
// reconfiguration graph (and therefore receives capture/restore blocks).
func (rg *RGraph) Instrumented(name string) bool {
	return nodeIndex(rg.Nodes, name) < len(rg.Nodes)
}

// DOT renders a graph in Graphviz format, with stable ordering, for the
// Figure 6 reproduction.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph static_call_graph {\n")
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	for _, c := range g.Calls {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", c.Caller, c.Callee, fmt.Sprintf("line %d", c.Line))
	}
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the reconfiguration graph with its numbered edges.
func (rg *RGraph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph reconfiguration_graph {\n")
	for _, n := range rg.Nodes {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	fmt.Fprintf(&b, "  %q [shape=doublecircle];\n", ReconfigNode)
	for _, e := range rg.Edges {
		label := fmt.Sprintf("(%d, S%d)", e.Index, e.Line)
		if e.IsReconfig() {
			label = fmt.Sprintf("(%d, %s)", e.Index, e.Point.Label)
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.Caller, e.Callee, label)
	}
	b.WriteString("}\n")
	return b.String()
}

// String summarizes the reconfiguration graph one edge per line.
func (rg *RGraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes: %s\n", strings.Join(rg.Nodes, " "))
	for _, e := range rg.Edges {
		if e.IsReconfig() {
			fmt.Fprintf(&b, "edge %d: %s -> reconfig (point %s, line %d)\n", e.Index, e.Caller, e.Point.Label, e.Line)
		} else {
			fmt.Fprintf(&b, "edge %d: %s -> %s (line %d)\n", e.Index, e.Caller, e.Callee, e.Line)
		}
	}
	return b.String()
}
