package mh

import (
	"fmt"

	"repro/internal/checkpoint"
)

// This file wires the checkpointing baseline (internal/checkpoint) into the
// participation runtime for *replicated* modules. The paper's Discussion
// rejects periodic checkpointing for planned reconfiguration — the capture
// cost should be paid only when a reconfiguration happens — but a crash is
// not planned: a dead replica can divulge nothing, so the supervisor rebuilds
// it from the newest periodic checkpoint instead. The runtime charges the
// capture every interval operations and publishes the encoded bytes to a
// sink; the supervisor keeps the latest per replica as the stand-in for
// divulged state.

// CheckpointSink receives each newly taken checkpoint: the replica's instance
// name and the encoded abstract state. Called on the module's own thread
// right after the snapshot is taken; implementations must not block on the
// module (store-and-return, like the supervisor's).
type CheckpointSink func(instance string, encoded []byte)

// WithCheckpoint arms periodic abstract-state checkpointing: once the module
// registers its snapshot function (RegisterSnapshot), every interval
// communication operations the runtime captures the abstract state, encodes
// it, and hands the bytes to sink. interval <= 0 leaves checkpointing off.
func WithCheckpoint(interval int, sink CheckpointSink) Option {
	return func(r *Runtime) {
		r.cpInterval = interval
		r.cpSink = sink
	}
}

// RegisterSnapshot supplies the module's abstract-state renderer and starts
// the operation counter. The snapshot runs on the module thread between
// operations, so it may read module state without synchronization. A no-op
// unless the runtime was built WithCheckpoint.
func (r *Runtime) RegisterSnapshot(snap checkpoint.Snapshot) {
	if r.cpInterval <= 0 {
		return
	}
	cp, err := checkpoint.New(r.cpInterval, r.codec, snap)
	if err != nil {
		r.record(fmt.Errorf("mh: checkpoint: %w", err))
		return
	}
	r.cp = cp
	// Baseline checkpoint at registration: a replica is recoverable from
	// birth, not only after its first interval elapses.
	if err := cp.Checkpoint(); err != nil {
		r.record(err)
		return
	}
	if r.cpSink != nil {
		if data := cp.Latest(); data != nil {
			r.cpSink(r.port.Name(), data)
		}
	}
}

// Checkpointer exposes the runtime's checkpointer (nil unless WithCheckpoint
// and RegisterSnapshot both happened), for stats and direct Restore.
func (r *Runtime) Checkpointer() *checkpoint.Checkpointer { return r.cp }

// Ops returns the number of communication operations the module has
// completed. It is safe to read from other goroutines: the supervisor's
// failure detector treats an advancing counter as a heartbeat and a stalled
// one (with queued input) as a wedged replica.
func (r *Runtime) Ops() int64 { return r.ops.Load() }

// tickOp records one completed communication operation: advances the
// heartbeat counter and, when checkpointing is armed, charges the periodic
// capture and publishes any newly taken checkpoint to the sink.
func (r *Runtime) tickOp() {
	r.ops.Add(1)
	if r.cp == nil {
		return
	}
	if err := r.cp.Tick(); err != nil {
		r.record(err)
		return
	}
	// Only the module thread ticks, so PendingOps()==0 here means Tick just
	// took a checkpoint (the counter resets only at capture).
	if r.cpSink != nil && r.cp.PendingOps() == 0 {
		if data := r.cp.Latest(); data != nil {
			r.cpSink(r.port.Name(), data)
		}
	}
}
