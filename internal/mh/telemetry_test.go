package mh

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// TestRuntimeTelemetry runs the Figure 4 capture/restore round trip with a
// registry attached and checks the published metrics: flag-check counts
// match the in-struct FlagChecks counter, and the capture and restore
// timers recorded exactly one observation each.
func TestRuntimeTelemetry(t *testing.T) {
	b := newMonitorBus(t)
	reg := telemetry.NewRegistry()
	rt := attachRT(t, b, "compute", WithTelemetry(reg))
	if rt.Telemetry() != reg {
		t.Fatal("Telemetry() accessor mismatch")
	}
	mod := &computeModule{mh: rt}

	// Drive one depth-1 request, then a reconfiguration capture: the module
	// unwinds with two frames (main@1, compute@4).
	writeOn(t, b, "display", "temper", 1)
	if err := b.SignalReconfig("compute"); err != nil {
		t.Fatal(err)
	}
	if term := Run(mod.main); term != nil {
		t.Fatalf("module terminated abnormally: %v", term)
	}
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["mh.compute.flag_checks"]; got != rt.FlagChecks {
		t.Errorf("flag_checks counter = %d, FlagChecks field = %d", got, rt.FlagChecks)
	}
	if got := snap.Counters["mh.compute.flag_checks"]; got == 0 {
		t.Error("flag_checks counter never incremented")
	}
	cap := snap.Histograms["mh.compute.capture_ns"]
	if cap.Count != 1 {
		t.Errorf("capture_ns count = %d, want 1", cap.Count)
	}

	// Restore into a clone with its own registry.
	owner, err := b.AwaitDivulged("compute", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(computeSpec("compute2", "m1", bus.StatusClone)); err != nil {
		t.Fatal(err)
	}
	if err := b.InstallState("compute2", owner.Data()); err != nil {
		t.Fatal(err)
	}
	reg2 := telemetry.NewRegistry()
	rt2 := attachRT(t, b, "compute2", WithTelemetry(reg2))
	rt2.Decode()
	var loc, n, num, n2 int
	var response, rp float64
	rt2.Restore("main", "iiF", &loc, &n, &response)
	rt2.Restore("compute", "iiiF", &loc, &num, &n2, &rp)
	rt2.FinishRestore()
	if err := rt2.Err(); err != nil {
		t.Fatal(err)
	}
	res := reg2.Snapshot().Histograms["mh.compute2.restore_ns"]
	if res.Count != 1 {
		t.Errorf("restore_ns count = %d, want 1", res.Count)
	}
	if res.MaxNs <= 0 {
		t.Errorf("restore_ns max = %d, want > 0", res.MaxNs)
	}
}

// TestFlagCheckZeroAlloc asserts the tentpole's fast-path guarantee at the
// mh layer: a reconfiguration-point flag test allocates nothing, with
// telemetry attached or absent.
func TestFlagCheckZeroAlloc(t *testing.T) {
	b := newMonitorBus(t)
	reg := telemetry.NewRegistry()
	rt := attachRT(t, b, "compute", WithTelemetry(reg))
	rt.Init()
	if n := testing.AllocsPerRun(1000, func() {
		rt.Reconfig()
		rt.CaptureStack()
		rt.Restoring()
	}); n != 0 {
		t.Errorf("instrumented flag checks allocate %v/op", n)
	}
}

// writeOn pushes one encoded value from a driver instance's interface.
func writeOn(t *testing.T, b *bus.Bus, inst, iface string, val any) {
	t.Helper()
	port, err := b.Attach(inst)
	if err != nil {
		t.Fatal(err)
	}
	v, err := state.FromGo(val)
	if err != nil {
		t.Fatal(err)
	}
	data, err := New(port).codec.EncodeValue(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := port.Write(iface, data); err != nil {
		t.Fatal(err)
	}
}
