package mh

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bus"
	"repro/internal/state"
)

// This file exposes the runtime's primitives at the abstract-value level,
// for hosts (the module-subset interpreter) that hold state.Value operands
// directly instead of native Go variables. The flag and state-transfer
// logic is shared with the native API in mh.go.

// ReadAbstract blocks for the next message on iface and returns its decoded
// abstract value. The bool result is false if an error was recorded.
func (r *Runtime) ReadAbstract(iface string) (state.Value, bool) {
	r.pollSignals()
	m, err := r.port.Read(iface)
	if err != nil {
		if errors.Is(err, bus.ErrStopped) {
			r.failFatal(err)
			return state.Value{}, false
		}
		r.record(fmt.Errorf("mh: read %s: %w", iface, err))
		return state.Value{}, false
	}
	v, err := r.codec.DecodeValue(m.Data)
	if err != nil {
		r.record(fmt.Errorf("mh: decode message on %s: %w", iface, err))
		return state.Value{}, false
	}
	r.tickOp()
	return v, true
}

// WriteAbstract emits an abstract value on iface.
func (r *Runtime) WriteAbstract(iface string, v state.Value) {
	r.pollSignals()
	data, err := r.codec.EncodeValue(v)
	if err != nil {
		r.record(fmt.Errorf("mh: encode message for %s: %w", iface, err))
		return
	}
	if err := r.port.Write(iface, data); err != nil {
		if errors.Is(err, bus.ErrStopped) {
			r.failFatal(err)
			return
		}
		r.record(fmt.Errorf("mh: write %s: %w", iface, err))
		return
	}
	r.tickOp()
}

// CaptureAbstract appends one frame with named abstract variables.
func (r *Runtime) CaptureAbstract(fn string, loc int, vars []state.Var) {
	if r.capturing == nil {
		r.capturing = state.New(r.port.Name())
		r.capturing.Machine = r.port.Machine()
		r.captureStart = time.Now()
	}
	r.capturing.PushFrame(state.Frame{Func: fn, Location: loc, Vars: vars})
}

// NextRestoreFrame pops the next frame to replay (bottom-first), verifying
// it belongs to fn. The bool result is false after a fatal mismatch.
func (r *Runtime) NextRestoreFrame(fn string) (state.Frame, bool) {
	if r.restoreIdx >= len(r.restore) {
		r.failRestore(fmt.Errorf("%w: %s restoring beyond frame %d", ErrWrongFrame, fn, r.restoreIdx))
		return state.Frame{}, false
	}
	frame := r.restore[r.restoreIdx]
	r.restoreIdx++
	if frame.Func != fn {
		r.failRestore(fmt.Errorf("%w: frame %d belongs to %s, %s is restoring", ErrWrongFrame, r.restoreIdx-1, frame.Func, fn))
		return state.Frame{}, false
	}
	return frame, true
}
