// Package mh is the module-participation runtime: the reproduction of the
// mh_* primitives that the paper's transformed modules call (Figure 4).
//
// A Runtime wraps a bus.Port and exposes:
//
//   - communication: Init, Read, Write, QueryIfMsgs, Sleep — the POLYLITH
//     primitives the original module already used;
//   - the three reconfiguration flags — mh_reconfig (a reconfiguration was
//     requested), mh_capturestack (unwind and capture the activation-record
//     stack), mh_restoring (rebuild the stack) — with the exact set/clear
//     operations the generated capture and restore blocks perform;
//   - state transfer: Capture, Encode, Decode, Restore, mirroring
//     mh_capture / mh_encode / mh_decode / mh_restore.
//
// Error model: the paper's C primitives return no status, and the generated
// blocks must stay straight-line code, so Runtime methods are void. Any
// failure is recorded (Err) and fatal failures — the instance was deleted,
// state transfer broke — divert to the FatalHandler, which by default
// panics with Termination. Hosts (the interpreter, or the Run helper for
// compiled modules) recover Termination and treat it as a clean exit.
package mh

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/bus"
	"repro/internal/checkpoint"
	"repro/internal/codec"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// Termination is the panic value used to unwind a module whose instance was
// stopped or which completed a state capture. Hosts recover it.
type Termination struct {
	// Reason describes why the module unwound.
	Reason string
}

// Error implements error so Termination can travel as one.
func (t Termination) Error() string { return "mh: module terminated: " + t.Reason }

// ErrWrongFrame indicates a Restore whose frame does not match the
// procedure executing it — the divulged state disagrees with the program.
var ErrWrongFrame = errors.New("mh: restore frame mismatch")

// Option configures a Runtime.
type Option func(*Runtime)

// WithCodec selects the codec for messages and state (default: portable).
func WithCodec(c codec.Codec) Option { return func(r *Runtime) { r.codec = c } }

// WithSleepUnit sets the duration of one mh.Sleep tick (default 1ms). The
// paper's modules sleep in seconds; tests and benchmarks compress time.
func WithSleepUnit(d time.Duration) Option { return func(r *Runtime) { r.sleepUnit = d } }

// WithFatalHandler overrides the fatal-error handler (default: panic with
// Termination).
func WithFatalHandler(fn func(error)) Option { return func(r *Runtime) { r.fatal = fn } }

// WithLogWriter redirects mh.Log output (default os.Stdout). A nil writer
// silences logging.
func WithLogWriter(w io.Writer) Option { return func(r *Runtime) { r.logw = w } }

// WithStateTimeout bounds Decode's wait for installed state (default 30s).
func WithStateTimeout(d time.Duration) Option { return func(r *Runtime) { r.stateTimeout = d } }

// WithWriteBatch enables the opt-in write-batching window: up to n
// consecutive Writes to the same interface are buffered and emitted as one
// batched send (Port.SendBatch / bus.BatchTracedWriter), amortizing the
// bus's per-send fixed costs — and, over TCP, the RPC round trip — across
// the window. The window flushes when it reaches n messages, when a Write
// targets a different interface, and before every primitive that must
// observe the sends' effects or hand off control: Read, QueryIfMsgs,
// Sleep, the Reconfig flag check, Capture and Encode — so by the time the
// module reaches a reconfiguration point its output is on the bus, exactly
// as with unbatched writes. All messages of one window share the causal
// parent of the last-read message (the window cannot outlive it: Read
// flushes first). n <= 1 disables batching (the default).
func WithWriteBatch(n int) Option { return func(r *Runtime) { r.batchMax = n } }

// WithTelemetry attaches a metrics registry. The runtime publishes
// mh.<instance>.flag_checks (every evaluation of a reconfiguration flag —
// the paper's entire steady-state overhead), mh.<instance>.capture_ns (first
// Capture through successful divulge) and mh.<instance>.restore_ns (Decode
// through FinishRestore). Metric handles are resolved once at construction;
// the flag-test path stays a single extra atomic add and zero allocations.
// Default: no telemetry (nil registry, no-op handles).
func WithTelemetry(reg *telemetry.Registry) Option { return func(r *Runtime) { r.telem = reg } }

// Runtime is the per-module-instance participation runtime. A module is
// single-threaded (paper assumption), so Runtime is not safe for concurrent
// use except where noted.
type Runtime struct {
	port         bus.Port
	codec        codec.Codec
	heap         *state.HeapRegistry
	sleepUnit    time.Duration
	stateTimeout time.Duration
	fatal        func(error)
	logw         io.Writer

	signalsOn bool // polling enabled (Init for originals, FinishRestore for clones)

	reconfig     bool
	captureStack bool
	restoring    bool

	capturing  *state.State  // frames accumulated innermost-first during capture
	restore    []state.Frame // frames to replay bottom-first during restoration
	restoreIdx int

	restoreAcked bool // restoration outcome already reported to the bus

	meta map[string]string
	err  error

	// FlagChecks counts evaluations of the Reconfig flag, quantifying the
	// paper's "run-time cost is merely that of periodically testing the
	// flags" claim (experiment C1).
	FlagChecks int64

	telem        *telemetry.Registry
	flagChecks   *telemetry.Counter   // nil (no-op) without telemetry
	errCount     *telemetry.Counter   // application errors (ReportError)
	captureNs    *telemetry.Histogram // first Capture -> divulged
	restoreNs    *telemetry.Histogram // Decode -> FinishRestore
	captureStart time.Time
	restoreStart time.Time

	// Replication support: ops is the heartbeat counter the supervisor's
	// failure detector reads (hence atomic); the checkpointer periodically
	// captures abstract state for crash recovery (see checkpoint.go).
	ops        atomic.Int64
	cp         *checkpoint.Checkpointer
	cpInterval int
	cpSink     CheckpointSink

	// Causal-tracing carry-through: the runtime remembers the trace context
	// of the last message it read and hands it back to the bus on the next
	// write, so the causal chain crosses the module without the module's
	// code knowing tracing exists — the paper's division of labour exactly.
	// tw is the port's TracedWriter capability, resolved once (nil for stub
	// ports; the chain simply breaks at that hop).
	msgCtx bus.TraceContext
	tw     bus.TracedWriter

	// Write batching (WithWriteBatch): consecutive same-interface writes
	// accumulate in batch and leave as one batched send. bw is the port's
	// BatchTracedWriter capability, resolved once (nil falls back to
	// Port.SendBatch, then to per-message writes).
	batchMax   int
	batchIface string
	batch      [][]byte
	bw         bus.BatchTracedWriter
}

// New wraps a bus port in a participation runtime.
func New(port bus.Port, opts ...Option) *Runtime {
	r := &Runtime{
		port:         port,
		codec:        codec.Default(),
		heap:         state.NewHeapRegistry(),
		sleepUnit:    time.Millisecond,
		stateTimeout: 30 * time.Second,
		meta:         map[string]string{},
		logw:         os.Stdout,
	}
	r.fatal = func(err error) { panic(Termination{Reason: err.Error()}) }
	r.tw, _ = port.(bus.TracedWriter)
	r.bw, _ = port.(bus.BatchTracedWriter)
	for _, o := range opts {
		o(r)
	}
	if r.telem != nil {
		prefix := "mh." + port.Name() + "."
		r.flagChecks = r.telem.Counter(prefix + "flag_checks")
		r.errCount = r.telem.Counter(prefix + "errors")
		r.captureNs = r.telem.Histogram(prefix + "capture_ns")
		r.restoreNs = r.telem.Histogram(prefix + "restore_ns")
	}
	return r
}

// Telemetry returns the runtime's metrics registry (nil without
// WithTelemetry).
func (r *Runtime) Telemetry() *telemetry.Registry { return r.telem }

// Err returns the first recorded non-fatal error, if any.
func (r *Runtime) Err() error { return r.err }

func (r *Runtime) record(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Runtime) failFatal(err error) {
	r.record(err)
	r.fatal(err)
}

// ReportError counts one application-level error against this instance's
// telemetry (mh.<instance>.errors). The health checker reads its windowed
// rate; module code calls it for failures it handles itself — a degraded
// module that still answers traffic is invisible to the crash detector but
// not to the error burn rate. A no-op without telemetry.
func (r *Runtime) ReportError() {
	r.errCount.Inc()
}

// Heap returns the heap registry for programmer-managed state (Section 1.2:
// heap data and file descriptors are the programmer's obligation).
func (r *Runtime) Heap() *state.HeapRegistry { return r.heap }

// SetMeta attaches a metadata key/value that travels with divulged state.
func (r *Runtime) SetMeta(k, v string) { r.meta[k] = v }

// Port exposes the underlying bus port (for hosts, not module code).
func (r *Runtime) Port() bus.Port { return r.port }

// ---- communication primitives ----

// Init prepares the module. For an original module ("add" status) it
// installs the reconfiguration signal handler, i.e. enables signal polling
// (the analogue of signal(SIGHUP, mh_catchreconfig) in Figure 4). A clone
// leaves the handler uninstalled until its restoration completes.
func (r *Runtime) Init() {
	if r.Status() != bus.StatusClone {
		r.signalsOn = true
	}
}

// Status returns "add" or "clone" (mh_getstatus).
func (r *Runtime) Status() string { return r.port.Status() }

// Name returns the attached instance's name. Native modules of a replicated
// instance use it to learn which member they are.
func (r *Runtime) Name() string { return r.port.Name() }

// InstallSignalHandler (re-)enables reconfiguration signal polling. The
// generated restore block for a reconfiguration edge calls this, mirroring
// Figure 4's signal(SIGHUP, mh_catchreconfig) after mh_restoring=0.
func (r *Runtime) InstallSignalHandler() { r.signalsOn = true }

// pollSignals moves any pending bus signal into the flags. This is the
// asynchronous signal handler of the paper collapsed into the polling
// points: flag reads and communication calls.
func (r *Runtime) pollSignals() {
	if !r.signalsOn {
		return
	}
	for {
		s, ok := r.port.TakeSignal()
		if !ok {
			return
		}
		switch s.Kind {
		case bus.SignalReconfig:
			r.reconfig = true
		case bus.SignalCancel:
			// A reconfiguration abort retracted the request before this
			// module reached a reconfiguration point; resume undisturbed.
			r.reconfig = false
		case bus.SignalStop:
			r.failFatal(fmt.Errorf("%w: stop signal", bus.ErrStopped))
		}
	}
}

// Read blocks for the next message on iface and stores its values through
// ptrs (mh_read). With one pointer the payload is the bare value; with
// several it must be a tuple (list) of the same arity.
func (r *Runtime) Read(iface string, ptrs ...any) {
	r.pollSignals()
	r.Flush()
	m, err := r.port.Read(iface)
	if err != nil {
		if errors.Is(err, bus.ErrStopped) {
			r.failFatal(err)
			return
		}
		r.record(fmt.Errorf("mh: read %s: %w", iface, err))
		return
	}
	r.msgCtx = m.Trace
	r.decodeInto(iface, m.Data, ptrs)
	r.tickOp()
}

// TraceContext returns the causal context of the last message this runtime
// read (the zero Context before any read, or on an untraced bus).
func (r *Runtime) TraceContext() bus.TraceContext { return r.msgCtx }

func (r *Runtime) decodeInto(iface string, data []byte, ptrs []any) {
	v, err := r.codec.DecodeValue(data)
	if err != nil {
		r.record(fmt.Errorf("mh: decode message on %s: %w", iface, err))
		return
	}
	if len(ptrs) == 1 {
		if err := state.ToGo(v, ptrs[0]); err != nil {
			r.record(fmt.Errorf("mh: read %s: %w", iface, err))
		}
		return
	}
	if v.Kind != state.KindList || len(v.List) != len(ptrs) {
		r.record(fmt.Errorf("mh: read %s: message arity %d does not match %d pointers", iface, len(v.List), len(ptrs)))
		return
	}
	for i, p := range ptrs {
		if err := state.ToGo(v.List[i], p); err != nil {
			r.record(fmt.Errorf("mh: read %s value %d: %w", iface, i, err))
			return
		}
	}
}

// Write emits values on iface (mh_write). One value is sent bare; several
// are sent as a tuple.
func (r *Runtime) Write(iface string, vals ...any) {
	r.pollSignals()
	v, err := packValues(vals)
	if err != nil {
		r.record(fmt.Errorf("mh: write %s: %w", iface, err))
		return
	}
	data, err := r.codec.EncodeValue(v)
	if err != nil {
		r.record(fmt.Errorf("mh: encode message for %s: %w", iface, err))
		return
	}
	if r.batchMax > 1 {
		if r.batchIface != iface {
			r.Flush()
			r.batchIface = iface
		}
		r.batch = append(r.batch, data)
		if len(r.batch) >= r.batchMax {
			r.Flush()
		}
		r.tickOp()
		return
	}
	if r.tw != nil {
		err = r.tw.WriteTraced(iface, data, r.msgCtx)
	} else {
		err = r.port.Write(iface, data)
	}
	if err != nil {
		if errors.Is(err, bus.ErrStopped) {
			r.failFatal(err)
			return
		}
		r.record(fmt.Errorf("mh: write %s: %w", iface, err))
		return
	}
	r.tickOp()
}

// Flush emits the pending write-batching window, if any. Module code never
// needs to call it — every control-handoff primitive flushes — but hosts
// driving a runtime directly may force it.
func (r *Runtime) Flush() {
	if len(r.batch) == 0 {
		return
	}
	iface, batch := r.batchIface, r.batch
	r.batch = r.batch[:0]
	var err error
	switch {
	case r.bw != nil:
		err = r.bw.WriteBatchTraced(iface, batch, r.msgCtx)
	default:
		err = r.port.SendBatch(iface, batch)
	}
	if err != nil {
		if errors.Is(err, bus.ErrStopped) {
			r.failFatal(err)
			return
		}
		r.record(fmt.Errorf("mh: write %s: %w", iface, err))
	}
}

func packValues(vals []any) (state.Value, error) {
	if len(vals) == 1 {
		return state.FromGo(vals[0])
	}
	out := state.Value{Kind: state.KindList, Type: "tuple", List: make([]state.Value, len(vals))}
	for i, val := range vals {
		v, err := state.FromGo(val)
		if err != nil {
			return state.Value{}, fmt.Errorf("value %d: %w", i, err)
		}
		out.List[i] = v
	}
	return out, nil
}

// QueryIfMsgs reports whether a message is queued on iface
// (mh_query_ifmsgs).
func (r *Runtime) QueryIfMsgs(iface string) bool {
	r.pollSignals()
	r.Flush()
	n, err := r.port.Pending(iface)
	if err != nil {
		if errors.Is(err, bus.ErrStopped) {
			r.failFatal(err)
			return false
		}
		r.record(fmt.Errorf("mh: query %s: %w", iface, err))
		return false
	}
	return n > 0
}

// Log prints values tagged with the instance name — the module language's
// only I/O besides the bus, for examples and demos.
func (r *Runtime) Log(vals ...any) {
	if r.logw == nil {
		return
	}
	args := append([]any{"[" + r.port.Name() + "]"}, vals...)
	fmt.Fprintln(r.logw, args...)
}

// Sleep pauses for ticks sleep units, waking early if the instance is
// deleted.
func (r *Runtime) Sleep(ticks int) {
	r.pollSignals()
	r.Flush()
	d := time.Duration(ticks) * r.sleepUnit
	const slice = 5 * time.Millisecond
	deadline := time.Now().Add(d)
	for {
		if r.port.Done() {
			r.failFatal(fmt.Errorf("%w: deleted during sleep", bus.ErrStopped))
			return
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return
		}
		if remaining > slice {
			remaining = slice
		}
		time.Sleep(remaining)
	}
}

// ---- reconfiguration flags ----

// Reconfig reports the mh_reconfig flag, polling for a pending signal
// first. This is the test the generated capture block at a reconfiguration
// point performs; its cost is the paper's entire steady-state overhead.
func (r *Runtime) Reconfig() bool {
	r.FlagChecks++
	r.flagChecks.Inc()
	r.pollSignals()
	// A reconfiguration point must observe the module's output on the bus:
	// flush the write-batching window before reporting the flag (a length
	// test when batching is off or the window is empty).
	r.Flush()
	return r.reconfig
}

// ClearReconfig clears mh_reconfig (generated: mh_reconfig = 0).
func (r *Runtime) ClearReconfig() { r.reconfig = false }

// RequestReconfig sets mh_reconfig directly, as the in-process signal
// handler would (exposed for tests and the quiescence baseline).
func (r *Runtime) RequestReconfig() { r.reconfig = true }

// CaptureStack reports the mh_capturestack flag.
func (r *Runtime) CaptureStack() bool {
	r.FlagChecks++
	r.flagChecks.Inc()
	return r.captureStack
}

// SetCaptureStack sets mh_capturestack (generated: mh_capturestack = 1).
func (r *Runtime) SetCaptureStack(on bool) { r.captureStack = on }

// Restoring reports the mh_restoring flag. At module start the generated
// code derives it from the instance status: a clone begins restoring
// (Figure 4: if (strcmp(mh_getstatus(),"clone")==0) mh_restoring=1).
func (r *Runtime) Restoring() bool {
	r.FlagChecks++
	r.flagChecks.Inc()
	return r.restoring
}

// SetRestoring sets or clears mh_restoring. Clearing it at the end of a
// restoration (the generated reconfiguration-edge restore code) confirms
// the restoration to the bus, provided every divulged frame was consumed.
func (r *Runtime) SetRestoring(on bool) {
	if !on && r.restoring && r.restoreIdx == len(r.restore) {
		if !r.restoreStart.IsZero() {
			r.restoreNs.Observe(time.Since(r.restoreStart))
		}
		r.ackRestore(nil)
	}
	r.restoring = on
}

// ---- state capture ----

// Capture appends one activation-record frame to the state being captured
// (mh_capture). The format string covers the location integer followed by
// the variables, exactly as in Figure 4 ("llF", 1, n, response); fn is the
// capturing procedure (implicit in C, explicit here for validation).
func (r *Runtime) Capture(fn, format string, vals ...any) {
	if len(vals) == 0 {
		r.record(errors.New("mh: capture without a location value"))
		return
	}
	loc, ok := vals[0].(int)
	if !ok {
		r.record(fmt.Errorf("mh: capture location must be int, got %T", vals[0]))
		return
	}
	if r.capturing == nil {
		r.capturing = state.New(r.port.Name())
		r.capturing.Machine = r.port.Machine()
		r.captureStart = time.Now()
	}
	// Entering capture means the module passed a reconfiguration point:
	// anything still in the write-batching window was emitted before it and
	// must precede the divulged state on the bus.
	r.Flush()
	frame := state.Frame{Func: fn, Location: loc}
	avs := make([]state.Value, 0, len(vals))
	locV := state.IntValue(int64(loc))
	avs = append(avs, locV)
	for i, val := range vals[1:] {
		av, err := state.FromGo(val)
		if err != nil {
			r.record(fmt.Errorf("mh: capture %s var %d: %w", fn, i, err))
			return
		}
		frame.Vars = append(frame.Vars, state.Var{Name: fmt.Sprintf("v%d", i), Value: av})
		avs = append(avs, av)
	}
	if err := codec.ValidateFormat(format, avs); err != nil {
		r.record(fmt.Errorf("mh: capture %s: %w", fn, err))
		return
	}
	r.capturing.PushFrame(frame)
}

// CaptureNamed is Capture with explicit variable names, used when the
// transform knows them (it always does); names make divulged state
// self-documenting and allow name-checked restoration in tests.
func (r *Runtime) CaptureNamed(fn string, loc int, names []string, vals ...any) {
	if len(names) != len(vals) {
		r.record(fmt.Errorf("mh: capture %s: %d names for %d values", fn, len(names), len(vals)))
		return
	}
	if r.capturing == nil {
		r.capturing = state.New(r.port.Name())
		r.capturing.Machine = r.port.Machine()
		r.captureStart = time.Now()
	}
	frame := state.Frame{Func: fn, Location: loc}
	for i, val := range vals {
		av, err := state.FromGo(val)
		if err != nil {
			r.record(fmt.Errorf("mh: capture %s var %s: %w", fn, names[i], err))
			return
		}
		frame.Vars = append(frame.Vars, state.Var{Name: names[i], Value: av})
	}
	r.capturing.PushFrame(frame)
}

// CapturedDepth returns the number of frames captured so far.
func (r *Runtime) CapturedDepth() int {
	if r.capturing == nil {
		return 0
	}
	return r.capturing.Depth()
}

// Encode finalizes the captured state — reverses the innermost-first frames
// into stack order, captures registered heap objects, attaches metadata —
// and divulges it to the bus (mh_encode). The module's main returns right
// after, completing the capture of its bottom-most activation record.
func (r *Runtime) Encode() {
	r.Flush()
	if r.capturing == nil {
		r.record(errors.New("mh: encode with no captured frames"))
		return
	}
	st := r.capturing
	r.capturing = nil
	st.Reverse()
	heap, err := r.heap.CaptureAll()
	if err != nil {
		r.failFatal(fmt.Errorf("mh: encode: %w", err))
		return
	}
	st.Heap = heap
	for k, v := range r.meta {
		st.Meta[k] = v
	}
	if err := st.Validate(); err != nil {
		r.failFatal(fmt.Errorf("mh: encode: %w", err))
		return
	}
	data, err := r.codec.EncodeState(st)
	if err != nil {
		r.failFatal(fmt.Errorf("mh: encode: %w", err))
		return
	}
	// A module that fails to divulge dies with its captured state — the
	// one window the transaction layer cannot roll back, since the stack
	// is already unwound. Retry transient bus failures with backoff
	// before giving up.
	var derr error
	for attempt, backoff := 0, 10*time.Millisecond; attempt < 3; attempt++ {
		if derr = r.port.Divulge(data); derr == nil {
			if !r.captureStart.IsZero() {
				r.captureNs.Observe(time.Since(r.captureStart))
			}
			return
		}
		if errors.Is(derr, bus.ErrStopped) {
			break
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	r.failFatal(fmt.Errorf("mh: divulge: %w", derr))
}

// ---- state restoration ----

// restoreConfirmer is the optional port capability for reporting a clone's
// restoration outcome back to the bus (Attachment and RemotePort both
// provide it; stub ports in tests need not).
type restoreConfirmer interface {
	ConfirmRestore(restoreErr error) error
}

// ackRestore reports the restoration outcome to the bus exactly once. The
// reconfiguration coordinator waits on it (Bus.AwaitRestored) before
// committing the destructive tail of a replacement, so both the success
// edge (mh_restoring cleared with every frame consumed) and every
// restoration failure path must pass through here.
func (r *Runtime) ackRestore(restoreErr error) {
	if r.restoreAcked {
		return
	}
	r.restoreAcked = true
	if c, ok := r.port.(restoreConfirmer); ok {
		_ = c.ConfirmRestore(restoreErr)
	}
}

// failRestore acknowledges a restoration failure to the bus, then diverts to
// the fatal handler.
func (r *Runtime) failRestore(err error) {
	r.ackRestore(err)
	r.failFatal(err)
}

// ConfirmRestoreOutcome reports a restoration outcome to the bus if one is
// still owed. Hosts call it when a clone's module body exits, so a clone
// that died mid-restoration through a path the runtime cannot see (an
// interpreter failure, a panic in module code) still unblocks the
// coordinator's AwaitRestored instead of leaving it to time out. It is a
// no-op for modules that were not launched as clones or that already
// confirmed.
func (r *Runtime) ConfirmRestoreOutcome(err error) {
	if r.restoreAcked || r.Status() != bus.StatusClone {
		return
	}
	if err == nil {
		err = errors.New("mh: module exited before completing restoration")
	}
	r.ackRestore(err)
}

// Decode waits for installed state and prepares restoration (mh_decode):
// heap objects are reinstalled, the frame cursor is set to the bottom-most
// frame, and mh_restoring is set.
func (r *Runtime) Decode() {
	r.restoreStart = time.Now()
	data, err := r.port.AwaitState(r.stateTimeout)
	if err != nil {
		r.failRestore(fmt.Errorf("mh: decode: %w", err))
		return
	}
	st, err := r.codec.DecodeState(data)
	if err != nil {
		r.failRestore(fmt.Errorf("mh: decode: %w", err))
		return
	}
	if err := st.Validate(); err != nil {
		r.failRestore(fmt.Errorf("mh: decode: %w", err))
		return
	}
	if err := r.heap.RestoreAll(st.Heap); err != nil {
		r.failRestore(fmt.Errorf("mh: decode: %w", err))
		return
	}
	r.restore = st.Frames
	r.restoreIdx = 0
	r.restoring = true
}

// Restore pops the next frame (bottom-first) and stores its location and
// variables through ptrs (mh_restore). As in Figure 4, the format string
// covers the location followed by the variables, and ptrs[0] receives the
// location: mh_restore("iif", &mh_location, &n, &response).
func (r *Runtime) Restore(fn, format string, ptrs ...any) {
	if len(ptrs) == 0 {
		r.failRestore(errors.New("mh: restore without a location pointer"))
		return
	}
	if r.restoreIdx >= len(r.restore) {
		r.failRestore(fmt.Errorf("%w: %s restoring beyond frame %d", ErrWrongFrame, fn, r.restoreIdx))
		return
	}
	frame := r.restore[r.restoreIdx]
	r.restoreIdx++
	if frame.Func != fn {
		r.failRestore(fmt.Errorf("%w: frame %d belongs to %s, %s is restoring", ErrWrongFrame, r.restoreIdx-1, frame.Func, fn))
		return
	}
	if len(ptrs)-1 != len(frame.Vars) {
		r.failRestore(fmt.Errorf("%w: %s frame has %d vars, %d pointers supplied", ErrWrongFrame, fn, len(frame.Vars), len(ptrs)-1))
		return
	}
	if len(format) > 0 {
		avs := make([]state.Value, 0, len(frame.Vars)+1)
		avs = append(avs, state.IntValue(int64(frame.Location)))
		for _, v := range frame.Vars {
			avs = append(avs, v.Value)
		}
		if err := codec.ValidateFormat(format, avs); err != nil {
			r.failRestore(fmt.Errorf("mh: restore %s: %w", fn, err))
			return
		}
	}
	locPtr, ok := ptrs[0].(*int)
	if !ok {
		r.failRestore(fmt.Errorf("mh: restore %s: location pointer is %T, want *int", fn, ptrs[0]))
		return
	}
	*locPtr = frame.Location
	for i, v := range frame.Vars {
		if err := state.ToGo(v.Value, ptrs[i+1]); err != nil {
			r.failRestore(fmt.Errorf("mh: restore %s var %s: %w", fn, v.Name, err))
			return
		}
	}
}

// RemainingFrames reports how many frames are still to be restored.
func (r *Runtime) RemainingFrames() int { return len(r.restore) - r.restoreIdx }

// FinishRestore completes restoration: mh_restoring is cleared and the
// reconfiguration signal handler installed (the reconfiguration-edge
// restore code of Figure 8). It verifies every frame was consumed.
func (r *Runtime) FinishRestore() {
	if r.restoreIdx != len(r.restore) {
		r.failRestore(fmt.Errorf("%w: %d frames left unrestored", ErrWrongFrame, len(r.restore)-r.restoreIdx))
		return
	}
	r.restoring = false
	r.restore = nil
	r.signalsOn = true
	if !r.restoreStart.IsZero() {
		r.restoreNs.Observe(time.Since(r.restoreStart))
	}
	r.ackRestore(nil)
}

// Stopped reports whether the module's instance has been deleted.
func (r *Runtime) Stopped() bool { return r.port.Done() }

// Run executes a module body, converting a Termination unwind into a normal
// return. Hosts of compiled modules use it as their main loop wrapper. The
// result is nil when the body ran to completion.
func Run(body func()) (term *Termination) {
	defer func() {
		if rec := recover(); rec != nil {
			if t, ok := rec.(Termination); ok {
				term = &t
				return
			}
			panic(rec)
		}
	}()
	body()
	return nil
}
