package mh

import (
	"sync"
	"testing"

	"repro/internal/bus"
	"repro/internal/state"
)

func TestCheckpointEveryKOpsPublishesToSink(t *testing.T) {
	b := newMonitorBus(t)
	var mu sync.Mutex
	var published [][]byte
	var fromInstance string
	sink := func(instance string, encoded []byte) {
		mu.Lock()
		defer mu.Unlock()
		fromInstance = instance
		published = append(published, encoded)
	}
	rt := attachRT(t, b, "compute", WithCheckpoint(4, sink))
	counter := 0
	rt.RegisterSnapshot(func() (*state.State, error) {
		st := state.New("compute")
		st.PushFrame(state.Frame{Func: "main", Location: 1,
			Vars: []state.Var{{Name: "counter", Value: state.IntValue(int64(counter))}}})
		return st, nil
	})
	display, err := b.Attach("display")
	if err != nil {
		t.Fatal(err)
	}

	// A baseline checkpoint publishes at registration, then 10 operations at
	// interval 4 → checkpoints after ops 4 and 8.
	for i := 0; i < 10; i++ {
		counter = i
		rt.Write("display", float64(i))
	}
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Ops(); got != 10 {
		t.Errorf("Ops() = %d, want 10", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(published) != 3 {
		t.Fatalf("published %d checkpoints, want 3 (baseline + ops 4 and 8)", len(published))
	}
	if fromInstance != "compute" {
		t.Errorf("sink saw instance %q", fromInstance)
	}
	// The second checkpoint decodes back to the state at op 8 (counter=7).
	st, replay, err := rt.Checkpointer().Restore()
	if err != nil {
		t.Fatal(err)
	}
	if replay != 2 {
		t.Errorf("replay = %d, want 2 (ops 9,10 after the op-8 checkpoint)", replay)
	}
	if st.Frames[0].Vars[0].Value.Int != 7 {
		t.Errorf("restored counter = %d, want 7", st.Frames[0].Vars[0].Value.Int)
	}
	// Drain what the module wrote so the queue test below is meaningful.
	for i := 0; i < 10; i++ {
		if _, err := display.Read("temper"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckpointOffWithoutOption(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute")
	rt.RegisterSnapshot(func() (*state.State, error) { return state.New("compute"), nil })
	if rt.Checkpointer() != nil {
		t.Error("checkpointer armed without WithCheckpoint")
	}
	display, err := b.Attach("display")
	if err != nil {
		t.Fatal(err)
	}
	if err := display.Write("temper", []byte(`{"k":"int","v":3}`)); err != nil {
		t.Fatal(err)
	}
	var n int
	rt.Read("display", &n)
	if got := rt.Ops(); got != 1 {
		t.Errorf("Ops() = %d, want 1 (Read counts)", got)
	}
}

func TestOpsHeartbeatReadableConcurrently(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute", WithCheckpoint(2, nil))
	rt.RegisterSnapshot(func() (*state.State, error) {
		st := state.New("compute")
		st.PushFrame(state.Frame{Func: "main", Location: 1})
		return st, nil
	})
	done := make(chan struct{})
	var last int64
	go func() { //archlint:spawn test heartbeat reader; joined via done channel
		defer close(done)
		for i := 0; i < 200; i++ {
			v := rt.Ops()
			if v < last {
				t.Errorf("Ops went backwards: %d -> %d", last, v)
				return
			}
			last = v
		}
	}()
	for i := 0; i < 100; i++ {
		rt.Write("display", float64(i))
	}
	<-done
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if bus.StatusAdd != rt.Status() {
		t.Errorf("status = %q", rt.Status())
	}
}
