package mh

// Write-batching window tests: with WithWriteBatch(n) the runtime buffers
// consecutive same-interface writes and emits them through one
// SendBatch/WriteBatchTraced call. The window must flush on every control
// handoff (a full window, an interface change, Read/QueryIfMsgs/Sleep, a
// reconfiguration point) so that observers — and above all the
// reconfiguration protocol — never see the module's output lag its state.

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/codec"
	"repro/internal/state"
)

// newDualBus wires one producer with two Out interfaces to two sinks, so a
// test can observe both the full-window flush and the interface-change
// flush.
func newDualBus(t *testing.T) *bus.Bus {
	t.Helper()
	b := bus.New()
	for _, spec := range []bus.InstanceSpec{
		{Name: "dual", Module: "dual", Interfaces: []bus.IfaceSpec{
			{Name: "a", Dir: bus.Out}, {Name: "b", Dir: bus.Out},
			{Name: "ctl", Dir: bus.In}}},
		{Name: "sa", Module: "sink", Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.In}}},
		{Name: "sb", Module: "sink", Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.In}}},
	} {
		if err := b.AddInstance(spec); err != nil {
			t.Fatal(err)
		}
	}
	for _, bind := range [][2]bus.Endpoint{
		{{Instance: "dual", Interface: "a"}, {Instance: "sa", Interface: "in"}},
		{{Instance: "dual", Interface: "b"}, {Instance: "sb", Interface: "in"}},
	} {
		if err := b.AddBinding(bind[0], bind[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func pending(t *testing.T, a *bus.Attachment, iface string) int {
	t.Helper()
	n, err := a.Pending(iface)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func drainInts(t *testing.T, a *bus.Attachment, iface string) []int64 {
	t.Helper()
	c := codec.Default()
	var out []int64
	for {
		m, ok, err := a.TryRead(iface)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		v, err := c.DecodeValue(m.Data)
		if err != nil {
			t.Fatal(err)
		}
		if v.Kind != state.KindInt {
			t.Fatalf("decoded %v, want int", v)
		}
		out = append(out, v.Int)
	}
}

func TestWriteBatchWindow(t *testing.T) {
	b := newDualBus(t)
	rt := attachRT(t, b, "dual", WithWriteBatch(3))
	rt.Init()
	sa, err := b.Attach("sa")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Attach("sb")
	if err != nil {
		t.Fatal(err)
	}

	// Below the window: nothing on the bus yet.
	rt.Write("a", 1)
	rt.Write("a", 2)
	if n := pending(t, sa, "in"); n != 0 {
		t.Fatalf("window leaked early: %d messages on the bus", n)
	}

	// Third write fills the window: all three land, in write order.
	rt.Write("a", 3)
	if got := drainInts(t, sa, "in"); len(got) != 3 ||
		got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("full-window flush delivered %v, want [1 2 3]", got)
	}

	// Interface change flushes the partial window for the old interface.
	rt.Write("a", 4)
	rt.Write("b", 10)
	if got := drainInts(t, sa, "in"); len(got) != 1 || got[0] != 4 {
		t.Fatalf("iface-change flush delivered %v to sa, want [4]", got)
	}
	if n := pending(t, sb, "in"); n != 0 {
		t.Fatalf("new interface's window leaked early: %d messages", n)
	}

	// QueryIfMsgs is a control handoff: it flushes the pending window.
	rt.QueryIfMsgs("ctl")
	if got := drainInts(t, sb, "in"); len(got) != 1 || got[0] != 10 {
		t.Fatalf("QueryIfMsgs flush delivered %v to sb, want [10]", got)
	}

	// Explicit Flush on a part-filled window; empty flush is a no-op.
	rt.Write("b", 11)
	rt.Flush()
	rt.Flush()
	if got := drainInts(t, sb, "in"); len(got) != 1 || got[0] != 11 {
		t.Fatalf("explicit flush delivered %v, want [11]", got)
	}
	if err := rt.Err(); err != nil {
		t.Fatalf("runtime error: %v", err)
	}
}

// TestWriteBatchOrderAcrossWindows pins cross-window FIFO: a long run of
// batched writes arrives at the sink in exactly write order, with nothing
// held back once the producer reaches a handoff.
func TestWriteBatchOrderAcrossWindows(t *testing.T) {
	b := newDualBus(t)
	rt := attachRT(t, b, "dual", WithWriteBatch(4))
	rt.Init()
	sa, err := b.Attach("sa")
	if err != nil {
		t.Fatal(err)
	}
	const total = 42 // not a multiple of the window: leaves a partial tail
	for i := 0; i < total; i++ {
		rt.Write("a", i)
	}
	rt.Sleep(0) // control handoff drains the tail
	got := drainInts(t, sa, "in")
	if len(got) != total {
		t.Fatalf("delivered %d messages, want %d", len(got), total)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("message %d = %d; batching reordered the stream", i, v)
		}
	}
}
