package mh

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/codec"
	"repro/internal/state"
)

// newMonitorBus builds the Figure 1 topology: display and sensor driven by
// the test, compute under test.
func newMonitorBus(t *testing.T) *bus.Bus {
	t.Helper()
	b := bus.New()
	add := func(spec bus.InstanceSpec) {
		t.Helper()
		if err := b.AddInstance(spec); err != nil {
			t.Fatal(err)
		}
	}
	add(bus.InstanceSpec{Name: "display", Module: "display", Machine: "m1",
		Interfaces: []bus.IfaceSpec{{Name: "temper", Dir: bus.InOut}}})
	add(bus.InstanceSpec{Name: "sensor", Module: "sensor", Machine: "m1",
		Interfaces: []bus.IfaceSpec{{Name: "out", Dir: bus.Out}}})
	add(computeSpec("compute", "m1", bus.StatusAdd))
	bind := func(a, c bus.Endpoint) {
		t.Helper()
		if err := b.AddBinding(a, c); err != nil {
			t.Fatal(err)
		}
	}
	bind(bus.Endpoint{Instance: "display", Interface: "temper"}, bus.Endpoint{Instance: "compute", Interface: "display"})
	bind(bus.Endpoint{Instance: "sensor", Interface: "out"}, bus.Endpoint{Instance: "compute", Interface: "sensor"})
	return b
}

func computeSpec(name, machine, status string) bus.InstanceSpec {
	return bus.InstanceSpec{
		Name: name, Module: "compute", Machine: machine, Status: status,
		Interfaces: []bus.IfaceSpec{
			{Name: "display", Dir: bus.InOut},
			{Name: "sensor", Dir: bus.In},
		},
	}
}

func attachRT(t *testing.T, b *bus.Bus, name string, opts ...Option) *Runtime {
	t.Helper()
	port, err := b.Attach(name)
	if err != nil {
		t.Fatal(err)
	}
	return New(port, opts...)
}

// computeModule is the hand-instrumented compute module of Figure 4,
// written in the flattened goto form the source transformation emits. It is
// the executable specification for internal/transform's output.
type computeModule struct{ mh *Runtime }

func (m *computeModule) main() {
	mh := m.mh
	var n int
	var response float64
	var mhLoc int
	mh.Init()
	// ---- begin restore ----
	if mh.Status() == bus.StatusClone {
		mh.Decode()
	}
	if mh.Restoring() {
		mh.Restore("main", "iiF", &mhLoc, &n, &response)
		if mhLoc == 1 {
			goto L1
		}
		if mhLoc == 2 {
			goto L2
		}
	}
	// ---- end restore ----
loop:
	if !mh.QueryIfMsgs("display") {
		goto afterRequests
	}
	mh.Read("display", &n)
L1:
	m.compute(n, n, &response)
	// ---- begin capture (edge 1) ----
	if mh.CaptureStack() {
		mh.Capture("main", "llF", 1, n, response)
		mh.Encode()
		return
	}
	// ---- end capture ----
	mh.Write("display", response)
	goto loop
afterRequests:
	if !mh.QueryIfMsgs("sensor") {
		goto idle
	}
L2:
	m.compute(1, 1, &response)
	// ---- begin capture (edge 2) ----
	if mh.CaptureStack() {
		mh.Capture("main", "llF", 2, n, response)
		mh.Encode()
		return
	}
	// ---- end capture ----
idle:
	mh.Sleep(1)
	goto loop
}

func (m *computeModule) compute(num, n int, rp *float64) {
	mh := m.mh
	var temper int
	var mhLoc int
	// ---- begin restore ----
	if mh.Restoring() {
		mh.Restore("compute", "iiiF", &mhLoc, &num, &n, rp)
		if mhLoc == 3 {
			goto L3
		}
		if mhLoc == 4 {
			mh.SetRestoring(false)
			mh.InstallSignalHandler()
			goto R
		}
	}
	// ---- end restore ----
	if n <= 0 {
		*rp = 0.0
		return
	}
L3:
	m.compute(num, n-1, rp)
	// ---- begin capture (edge 3) ----
	if mh.CaptureStack() {
		mh.Capture("compute", "lllF", 3, num, n, *rp)
		return
	}
	// ---- end capture ----
	// ---- begin capture (reconfiguration edge 4) ----
	if mh.Reconfig() {
		mh.ClearReconfig()
		mh.SetCaptureStack(true)
		mh.Capture("compute", "lllF", 4, num, n, *rp)
		return
	}
	// ---- end capture ----
R:
	mh.Read("sensor", &temper)
	*rp = *rp + float64(temper)/float64(num)
}

// TestMoveDuringRecursion is the paper's Section 2 demonstration at the
// runtime level (experiment E1): the compute module is moved to machineB
// while several recursive activation records are live, and the displayed
// average is identical to an unreconfigured run.
func TestMoveDuringRecursion(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute", WithSleepUnit(time.Microsecond))
	mod := &computeModule{mh: rt}

	moduleDone := make(chan *Termination, 1)
	go func() { moduleDone <- Run(mod.main) }()

	dispPort, err := b.Attach("display")
	if err != nil {
		t.Fatal(err)
	}
	sensPort, err := b.Attach("sensor")
	if err != nil {
		t.Fatal(err)
	}
	c := codec.Default()
	writeInt := func(p bus.Port, iface string, v int) {
		t.Helper()
		data, err := c.EncodeValue(state.IntValue(int64(v)))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(iface, data); err != nil {
			t.Fatal(err)
		}
	}

	// Request an average of 3 temperatures. compute recurses to depth 3
	// and blocks reading the (empty) sensor queue at the innermost level.
	writeInt(dispPort, "temper", 3)
	time.Sleep(50 * time.Millisecond)
	// Request the reconfiguration while the module is blocked mid-read,
	// then feed one temperature. The innermost level completes its read,
	// and the next level up polls the flag at its reconfiguration point —
	// so the capture happens with two compute frames still live.
	if err := b.SignalReconfig("compute"); err != nil {
		t.Fatal(err)
	}
	writeInt(sensPort, "out", 60)

	// The module unwinds: captures compute@4, compute@3, main@1, encodes,
	// divulges, and its main returns.
	owner, err := b.AwaitDivulged("compute", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case term := <-moduleDone:
		if term != nil {
			t.Fatalf("module terminated abnormally: %v", term)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("module did not exit after divulging")
	}
	if rt.Err() != nil {
		t.Fatalf("runtime error: %v", rt.Err())
	}

	// Inspect the divulged abstract state.
	st, err := c.DecodeState(owner.Data())
	if err != nil {
		t.Fatal(err)
	}
	if st.Module != "compute" || st.Machine != "m1" {
		t.Errorf("state origin = %s/%s", st.Module, st.Machine)
	}
	if st.Depth() != 3 {
		t.Fatalf("captured %d frames, want 3 (main + 2 compute)\n%s", st.Depth(), st)
	}
	if st.Frames[0].Func != "main" || st.Frames[0].Location != 1 {
		t.Errorf("bottom frame = %+v", st.Frames[0])
	}
	if st.Frames[1].Func != "compute" || st.Frames[1].Location != 3 {
		t.Errorf("middle frame = %+v", st.Frames[1])
	}
	if st.Frames[2].Func != "compute" || st.Frames[2].Location != 4 {
		t.Errorf("top frame = %+v", st.Frames[2])
	}

	// Create the clone on machineB, rebind, install state, run it.
	if err := b.AddInstance(computeSpec("compute2", "machineB", bus.StatusClone)); err != nil {
		t.Fatal(err)
	}
	err = b.Rebind([]bus.BindEdit{
		{Op: "del", From: bus.Endpoint{Instance: "display", Interface: "temper"}, To: bus.Endpoint{Instance: "compute", Interface: "display"}},
		{Op: "add", From: bus.Endpoint{Instance: "display", Interface: "temper"}, To: bus.Endpoint{Instance: "compute2", Interface: "display"}},
		{Op: "del", From: bus.Endpoint{Instance: "sensor", Interface: "out"}, To: bus.Endpoint{Instance: "compute", Interface: "sensor"}},
		{Op: "add", From: bus.Endpoint{Instance: "sensor", Interface: "out"}, To: bus.Endpoint{Instance: "compute2", Interface: "sensor"}},
		{Op: "cq", From: bus.Endpoint{Instance: "compute", Interface: "display"}, To: bus.Endpoint{Instance: "compute2", Interface: "display"}},
		{Op: "cq", From: bus.Endpoint{Instance: "compute", Interface: "sensor"}, To: bus.Endpoint{Instance: "compute2", Interface: "sensor"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.InstallState("compute2", owner.Data()); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteInstance("compute"); err != nil {
		t.Fatal(err)
	}

	rt2 := attachRT(t, b, "compute2", WithSleepUnit(time.Microsecond))
	mod2 := &computeModule{mh: rt2}
	clone2Done := make(chan *Termination, 1)
	go func() { clone2Done <- Run(mod2.main) }()

	// Feed the two remaining temperatures; the restored module finishes
	// the computation and replies.
	writeInt(sensPort, "out", 70)
	writeInt(sensPort, "out", 80)

	m, err := dispPort.Read("temper")
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.DecodeValue(m.Data)
	if err != nil {
		t.Fatal(err)
	}
	want := 60.0/3 + 70.0/3 + 80.0/3
	if v.Kind != state.KindFloat || v.Float != want {
		t.Errorf("moved computation answered %v, want %g", v, want)
	}
	if m.From != (bus.Endpoint{Instance: "compute2", Interface: "display"}) {
		t.Errorf("reply came from %v", m.From)
	}
	if rt2.Err() != nil {
		t.Errorf("clone runtime error: %v", rt2.Err())
	}

	// The clone keeps serving: a fresh request must work end to end.
	writeInt(dispPort, "temper", 2)
	writeInt(sensPort, "out", 10)
	writeInt(sensPort, "out", 20)
	m, err = dispPort.Read("temper")
	if err != nil {
		t.Fatal(err)
	}
	v, err = c.DecodeValue(m.Data)
	if err != nil {
		t.Fatal(err)
	}
	if v.Float != 15 {
		t.Errorf("post-move request answered %v, want 15", v)
	}

	// Shut the clone down.
	if err := b.DeleteInstance("compute2"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-clone2Done:
	case <-time.After(5 * time.Second):
		t.Fatal("clone did not stop after delete")
	}
}

// TestUnreconfiguredRunMatches computes the same workload with no
// reconfiguration, pinning down the expected answer used above.
func TestUnreconfiguredRunMatches(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute", WithSleepUnit(time.Microsecond))
	mod := &computeModule{mh: rt}
	go Run(mod.main)

	dispPort, err := b.Attach("display")
	if err != nil {
		t.Fatal(err)
	}
	sensPort, err := b.Attach("sensor")
	if err != nil {
		t.Fatal(err)
	}
	c := codec.Default()
	writeInt := func(p bus.Port, iface string, v int) {
		t.Helper()
		data, _ := c.EncodeValue(state.IntValue(int64(v)))
		if err := p.Write(iface, data); err != nil {
			t.Fatal(err)
		}
	}
	writeInt(dispPort, "temper", 3)
	writeInt(sensPort, "out", 60)
	writeInt(sensPort, "out", 70)
	writeInt(sensPort, "out", 80)
	m, err := dispPort.Read("temper")
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.DecodeValue(m.Data)
	if err != nil {
		t.Fatal(err)
	}
	want := 60.0/3 + 70.0/3 + 80.0/3
	if v.Float != want {
		t.Errorf("answer = %v, want %g", v, want)
	}
	if err := b.DeleteInstance("compute"); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteTuples(t *testing.T) {
	b := bus.New()
	for _, spec := range []bus.InstanceSpec{
		{Name: "a", Interfaces: []bus.IfaceSpec{{Name: "o", Dir: bus.Out}}},
		{Name: "z", Interfaces: []bus.IfaceSpec{{Name: "i", Dir: bus.In}}},
	} {
		if err := b.AddInstance(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddBinding(bus.Endpoint{Instance: "a", Interface: "o"}, bus.Endpoint{Instance: "z", Interface: "i"}); err != nil {
		t.Fatal(err)
	}
	ra := attachRT(t, b, "a")
	rz := attachRT(t, b, "z")
	ra.Init()
	rz.Init()

	ra.Write("o", 42, 2.5, "hello", true)
	var (
		i  int
		f  float64
		s  string
		ok bool
	)
	rz.Read("i", &i, &f, &s, &ok)
	if err := rz.Err(); err != nil {
		t.Fatal(err)
	}
	if i != 42 || f != 2.5 || s != "hello" || !ok {
		t.Errorf("tuple = %v %v %q %v", i, f, s, ok)
	}

	// Arity mismatch is recorded, not fatal.
	ra.Write("o", 1, 2)
	var only int
	var extra int
	rz.Read("i", &only, &extra, &extra)
	if rz.Err() == nil {
		t.Error("arity mismatch unreported")
	}
}

func TestQueryIfMsgs(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute")
	rt.Init()
	if rt.QueryIfMsgs("display") {
		t.Error("empty queue reported messages")
	}
	disp, err := b.Attach("display")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := codec.Default().EncodeValue(state.IntValue(1))
	if err := disp.Write("temper", data); err != nil {
		t.Fatal(err)
	}
	if !rt.QueryIfMsgs("display") {
		t.Error("queued message not reported")
	}
	if rt.QueryIfMsgs("nope") {
		t.Error("unknown interface reported messages")
	}
	if rt.Err() == nil {
		t.Error("unknown interface query unreported")
	}
}

func TestSignalSetsFlagOnlyAfterInit(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute")
	if err := b.SignalReconfig("compute"); err != nil {
		t.Fatal(err)
	}
	// Handler not installed: the flag stays clear.
	if rt.Reconfig() {
		t.Error("reconfig flag set before Init")
	}
	rt.Init()
	if err := b.SignalReconfig("compute"); err != nil {
		t.Fatal(err)
	}
	waitFlag(t, rt)
	rt.ClearReconfig()
	if rt.Reconfig() {
		t.Error("flag survived ClearReconfig")
	}
	if rt.FlagChecks < 3 {
		t.Errorf("FlagChecks = %d", rt.FlagChecks)
	}
}

func waitFlag(t *testing.T, rt *Runtime) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !rt.Reconfig() {
		if time.Now().After(deadline) {
			t.Fatal("reconfig flag never set")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCaptureValidation(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute")
	rt.Init()

	rt.Capture("f", "l")
	if rt.Err() == nil {
		t.Error("capture without location accepted")
	}

	rt2 := attachRT(t, b, "display")
	rt2.Capture("f", "l", "notint")
	if rt2.Err() == nil {
		t.Error("non-int location accepted")
	}

	b2 := newMonitorBus(t)
	rt3 := attachRT(t, b2, "compute")
	rt3.Capture("f", "lF", 1, 2) // format says float, value is int
	if rt3.Err() == nil {
		t.Error("format mismatch accepted")
	}

	b3 := newMonitorBus(t)
	rt4 := attachRT(t, b3, "compute")
	rt4.Capture("f", "ll", 1, make(chan int))
	if rt4.Err() == nil {
		t.Error("unencodable value accepted")
	}
}

func TestEncodeWithoutCapture(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute")
	rt.Encode()
	if rt.Err() == nil {
		t.Error("encode with no frames accepted")
	}
}

func TestCaptureEncodeDecodeRestoreCycle(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute")
	rt.Init()
	rt.SetMeta("reason", "test")

	// Innermost-first capture, as the unwinding blocks do.
	rt.Capture("inner", "lli", 7, 10, 20)
	rt.Capture("main", "ls", 2, "hi")
	if rt.CapturedDepth() != 2 {
		t.Errorf("CapturedDepth = %d", rt.CapturedDepth())
	}
	rt.Encode()
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}

	owner, err := b.AwaitDivulged("compute", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st, err := codec.Default().DecodeState(owner.Data())
	if err != nil {
		t.Fatal(err)
	}
	if st.Meta["reason"] != "test" {
		t.Errorf("meta = %v", st.Meta)
	}
	if st.Frames[0].Func != "main" {
		t.Error("frames not reversed to stack order")
	}

	// Clone restores.
	if err := b.AddInstance(computeSpec("clone", "m2", bus.StatusClone)); err != nil {
		t.Fatal(err)
	}
	if err := b.InstallState("clone", owner.Data()); err != nil {
		t.Fatal(err)
	}
	crt := attachRT(t, b, "clone")
	crt.Init()
	if crt.Restoring() {
		t.Error("restoring before Decode")
	}
	crt.Decode()
	if !crt.Restoring() {
		t.Fatal("not restoring after Decode")
	}
	if crt.RemainingFrames() != 2 {
		t.Errorf("RemainingFrames = %d", crt.RemainingFrames())
	}

	var loc int
	var s string
	crt.Restore("main", "ls", &loc, &s)
	if err := crt.Err(); err != nil {
		t.Fatal(err)
	}
	if loc != 2 || s != "hi" {
		t.Errorf("main frame = %d %q", loc, s)
	}
	var x, y int
	crt.Restore("inner", "lli", &loc, &x, &y)
	if loc != 7 || x != 10 || y != 20 {
		t.Errorf("inner frame = %d %d %d", loc, x, y)
	}
	crt.FinishRestore()
	if crt.Restoring() {
		t.Error("still restoring after FinishRestore")
	}
	if err := crt.Err(); err != nil {
		t.Fatal(err)
	}
	// Signals are live again after FinishRestore.
	if err := b.SignalReconfig("clone"); err != nil {
		t.Fatal(err)
	}
	waitFlag(t, crt)
}

func asTermination(t *testing.T, fn func()) Termination {
	t.Helper()
	term := Run(fn)
	if term == nil {
		t.Fatal("expected Termination")
	}
	return *term
}

func TestRestoreMismatchesAreFatal(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute")
	rt.Init()
	rt.Capture("main", "l", 1)
	rt.Encode()
	owner, err := b.AwaitDivulged("compute", time.Second)
	if err != nil {
		t.Fatal(err)
	}

	mkClone := func(name string) *Runtime {
		t.Helper()
		if err := b.AddInstance(computeSpec(name, "m2", bus.StatusClone)); err != nil {
			t.Fatal(err)
		}
		if err := b.InstallState(name, owner.Data()); err != nil {
			t.Fatal(err)
		}
		crt := attachRT(t, b, name)
		crt.Decode()
		return crt
	}

	var loc int
	crt := mkClone("c1")
	term := asTermination(t, func() { crt.Restore("wrongname", "l", &loc) })
	if !strings.Contains(term.Reason, "frame") {
		t.Errorf("reason = %q", term.Reason)
	}

	crt2 := mkClone("c2")
	asTermination(t, func() { crt2.Restore("main", "li", &loc, &loc) }) // too many ptrs

	crt3 := mkClone("c3")
	asTermination(t, func() { crt3.Restore("main", "l", "notptr") })

	crt4 := mkClone("c4")
	crt4.Restore("main", "l", &loc)
	asTermination(t, func() { crt4.Restore("main", "l", &loc) }) // beyond frames

	crt5 := mkClone("c5")
	asTermination(t, crt5.FinishRestore) // frames left unrestored

	crt6 := mkClone("c6")
	asTermination(t, func() { crt6.Restore("main", "", nil) }) // no location ptr... nil slice
}

func TestDecodeTimeoutIsFatal(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute", WithStateTimeout(20*time.Millisecond))
	term := asTermination(t, rt.Decode)
	if !strings.Contains(term.Reason, "timed out") {
		t.Errorf("reason = %q", term.Reason)
	}
}

func TestDecodeCorruptStateIsFatal(t *testing.T) {
	b := newMonitorBus(t)
	if err := b.InstallState("compute", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	rt := attachRT(t, b, "compute")
	asTermination(t, rt.Decode)
}

func TestHeapTravelsWithState(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute")
	rt.Init()
	window := []int{5, 6, 7}
	if err := rt.Heap().Register("window",
		func() (state.Value, error) { return state.FromGo(window) },
		nil,
	); err != nil {
		t.Fatal(err)
	}
	rt.Capture("main", "l", 1)
	rt.Encode()
	owner, err := b.AwaitDivulged("compute", time.Second)
	if err != nil {
		t.Fatal(err)
	}

	if err := b.AddInstance(computeSpec("clone", "m2", bus.StatusClone)); err != nil {
		t.Fatal(err)
	}
	if err := b.InstallState("clone", owner.Data()); err != nil {
		t.Fatal(err)
	}
	crt := attachRT(t, b, "clone")
	var restored []int
	if err := crt.Heap().Register("window",
		func() (state.Value, error) { return state.FromGo(restored) },
		func(v state.Value) error { return state.ToGo(v, &restored) },
	); err != nil {
		t.Fatal(err)
	}
	crt.Decode()
	if crt.Err() != nil {
		t.Fatal(crt.Err())
	}
	if len(restored) != 3 || restored[0] != 5 || restored[2] != 7 {
		t.Errorf("restored heap = %v", restored)
	}
}

func TestHeapCaptureFailureIsFatal(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute")
	if err := rt.Heap().Register("bad",
		func() (state.Value, error) { return state.Value{}, errors.New("boom") },
		nil,
	); err != nil {
		t.Fatal(err)
	}
	rt.Capture("main", "l", 1)
	asTermination(t, rt.Encode)
}

func TestStopSignalTerminates(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute")
	rt.Init()
	if err := b.Signal("compute", bus.Signal{Kind: bus.SignalStop}); err != nil {
		t.Fatal(err)
	}
	// Give the (asynchronous) signal time to arrive.
	time.Sleep(20 * time.Millisecond)
	asTermination(t, func() {
		for i := 0; i < 1000; i++ {
			rt.Reconfig()
			time.Sleep(time.Millisecond)
		}
	})
}

func TestSleepWakesOnDelete(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute", WithSleepUnit(time.Hour))
	done := make(chan *Termination, 1)
	go func() { done <- Run(func() { rt.Sleep(1) }) }()
	time.Sleep(20 * time.Millisecond)
	if err := b.DeleteInstance("compute"); err != nil {
		t.Fatal(err)
	}
	select {
	case term := <-done:
		if term == nil {
			t.Error("sleep returned normally after delete")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sleep did not wake on delete")
	}
	if !rt.Stopped() {
		t.Error("Stopped() = false after delete")
	}
}

func TestReadOnDeletedInstanceTerminates(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute")
	rt.Init()
	done := make(chan *Termination, 1)
	go func() {
		done <- Run(func() {
			var n int
			rt.Read("display", &n)
		})
	}()
	time.Sleep(20 * time.Millisecond)
	if err := b.DeleteInstance("compute"); err != nil {
		t.Fatal(err)
	}
	select {
	case term := <-done:
		if term == nil {
			t.Error("read returned normally after delete")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not wake on delete")
	}
}

func TestRunPassesThroughForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("foreign panic swallowed")
		}
	}()
	Run(func() { panic("not a termination") })
}

func TestCaptureNamed(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute")
	rt.CaptureNamed("main", 1, []string{"n", "resp"}, 5, 2.5)
	rt.Encode()
	owner, err := b.AwaitDivulged("compute", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st, err := codec.Default().DecodeState(owner.Data())
	if err != nil {
		t.Fatal(err)
	}
	v, ok := st.Frames[0].Var("resp")
	if !ok || v.Float != 2.5 {
		t.Errorf("named var = %v %t", v, ok)
	}

	rt2 := attachRT(t, b, "display")
	rt2.CaptureNamed("f", 1, []string{"a"}, 1, 2)
	if rt2.Err() == nil {
		t.Error("name/value arity mismatch accepted")
	}
}

func TestWithCodecOption(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute", WithCodec(codec.Gob{}))
	rt.Capture("main", "l", 1)
	rt.Encode()
	owner, err := b.AwaitDivulged("compute", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (codec.Gob{}).DecodeState(owner.Data()); err != nil {
		t.Errorf("state not gob-encoded: %v", err)
	}
}

// TestRuntimeCarriesTraceContext pins the runtime half of causal tracing:
// the context of the last message read becomes the causal parent of the
// module's next write, with no module-code involvement — the same
// runtime-does-the-bookkeeping division as the transformation itself.
func TestRuntimeCarriesTraceContext(t *testing.T) {
	b := newMonitorBus(t)
	rt := attachRT(t, b, "compute")
	rt.Init()
	disp, err := b.Attach("display")
	if err != nil {
		t.Fatal(err)
	}

	if rt.TraceContext().Valid() {
		t.Error("runtime carries a context before any read")
	}
	data, _ := codec.Default().EncodeValue(state.IntValue(2))
	if err := disp.Write("temper", data); err != nil {
		t.Fatal(err)
	}
	var n int
	rt.Read("display", &n)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	parent := rt.TraceContext()
	if !parent.Valid() {
		t.Fatal("read did not capture the message's trace context")
	}

	rt.Write("display", n*2)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	m, err := disp.Read("temper")
	if err != nil {
		t.Fatal(err)
	}
	if m.Trace.TraceID != parent.TraceID {
		t.Errorf("write opened trace %d instead of continuing %d", m.Trace.TraceID, parent.TraceID)
	}
	if m.Trace.Parent != parent.SpanID || m.Trace.Hops != parent.Hops+1 {
		t.Errorf("write context %+v is not a child of %+v", m.Trace, parent)
	}
}
