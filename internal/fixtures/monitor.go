// Package fixtures holds the paper's running example — the Monitor
// application of Section 2 — in a form shared by the facade tests, the
// benchmark harness and the runnable examples.
package fixtures

import (
	"fmt"
	"time"

	"repro/internal/mh"
)

// MonitorSpec is the Figure 2 configuration specification.
const MonitorSpec = `
# Figure 2: the Monitor application.
module display {
  source = "./display" ::
  client interface temper pattern = {integer} accepts {-float} ::
}

module compute {
  source = "./compute" ::
  server interface display pattern = {^integer} returns {float} ::
  use interface sensor pattern = {^integer} ::
  reconfiguration point = {R} ::
  state R = {num, n, rp} ::
}

module sensor {
  source = "./sensor" ::
  define interface out pattern = {integer} ::
}

module monitor {
  instance display
  instance compute on "machineA"
  instance sensor
  bind "display temper" "compute display"
  bind "sensor out" "compute sensor"
}
`

// ComputeSource is the Figure 3 compute module in the module language. The
// reconfiguration point R is marked with mh.ReconfigPoint (the Go-legal
// form of the paper's source label).
const ComputeSource = `package compute

func main() {
	var n int
	var response float64
	mh.Init()
	for {
		for mh.QueryIfMsgs("display") {
			mh.Read("display", &n)
			compute(n, n, &response)
			mh.Write("display", response)
		}
		if mh.QueryIfMsgs("sensor") {
			compute(1, 1, &response)
		}
		mh.Sleep(2)
	}
}

func compute(num int, n int, rp *float64) {
	var temper int
	if n <= 0 {
		*rp = 0.0
		return
	}
	compute(num, n-1, rp)
	mh.ReconfigPoint("R")
	mh.Read("sensor", &temper)
	*rp = *rp + float64(temper)/float64(num)
}
`

// SensorSource is a module-language sensor: it emits a repeating ramp of
// temperature values at regular intervals.
const SensorSource = `package sensor

func main() {
	var v int
	v = 60
	mh.Init()
	for {
		mh.Write("out", v)
		v = v + 1
		if v > 69 {
			v = 60
		}
		mh.Sleep(2)
	}
}
`

// DisplaySource is a module-language display: it requests the average of 4
// temperatures in a loop and logs each response.
const DisplaySource = `package display

func main() {
	var response float64
	mh.Init()
	for {
		mh.Write("temper", 4)
		mh.Read("temper", &response)
		mh.Log("average of 4 temperatures:", response)
		mh.Sleep(5)
	}
}
`

// SensorConfig drives the native sensor module.
type SensorConfig struct {
	// Values is the temperature sequence to emit; when exhausted, the
	// sensor repeats the last value. Empty means a deterministic ramp.
	Values []int
	// Interval is the mh.Sleep tick count between emissions.
	Interval int
	// Limit stops after this many emissions (0 = until deleted).
	Limit int
}

// Sensor returns a native sensor module: it produces temperature values at
// regular intervals on its "out" interface.
func Sensor(cfg SensorConfig) func(rt *mh.Runtime) {
	if cfg.Interval <= 0 {
		cfg.Interval = 1
	}
	return func(rt *mh.Runtime) {
		rt.Init()
		i := 0
		for cfg.Limit == 0 || i < cfg.Limit {
			var v int
			switch {
			case len(cfg.Values) == 0:
				v = 50 + i // unbounded ramp: any window identifies its start
			case i < len(cfg.Values):
				v = cfg.Values[i]
			default:
				v = cfg.Values[len(cfg.Values)-1]
			}
			rt.Write("out", v)
			i++
			rt.Sleep(cfg.Interval)
		}
	}
}

// DisplayRequest is one request/response pair observed by the display.
type DisplayRequest struct {
	N        int
	Response float64
	Elapsed  time.Duration
}

// Display returns a native display module that issues count requests, each
// asking for the average of n temperatures, and reports each response on
// the results channel.
func Display(n, count int, interval int, results chan<- DisplayRequest) func(rt *mh.Runtime) {
	return func(rt *mh.Runtime) {
		rt.Init()
		for i := 0; i < count; i++ {
			start := time.Now()
			rt.Write("temper", n)
			var response float64
			rt.Read("temper", &response)
			if results != nil {
				results <- DisplayRequest{N: n, Response: response, Elapsed: time.Since(start)}
			}
			if interval > 0 {
				rt.Sleep(interval)
			}
		}
	}
}

// ExpectedAverage computes the answer the monitor must produce for a
// request of n temperatures drawn from values (repeating the last one),
// starting at offset consumed.
func ExpectedAverage(values []int, consumed, n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		idx := consumed + i
		var v int
		switch {
		case len(values) == 0:
			v = 50 + idx
		case idx < len(values):
			v = values[idx]
		default:
			v = values[len(values)-1]
		}
		total += float64(v) / float64(n)
	}
	return total
}

// Describe renders a request for example output.
func (r DisplayRequest) Describe() string {
	return fmt.Sprintf("avg(%d) = %.3f (%.1fms)", r.N, r.Response, float64(r.Elapsed.Microseconds())/1000)
}
