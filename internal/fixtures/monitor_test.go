package fixtures

import (
	"strings"
	"testing"
	"time"

	"repro/internal/lang"
	"repro/internal/mil"
)

func TestMonitorSpecParses(t *testing.T) {
	spec, err := mil.ParseAndValidate(MonitorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Module("compute") == nil || spec.Application("monitor") == nil {
		t.Error("spec incomplete")
	}
}

func TestModuleSourcesCheck(t *testing.T) {
	for name, src := range map[string]string{
		"compute": ComputeSource,
		"sensor":  SensorSource,
		"display": DisplaySource,
	} {
		prog, err := lang.ParseSource(name+".go", src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := lang.Check(prog); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestExpectedAverage(t *testing.T) {
	// Explicit values, repeating the last after exhaustion.
	vals := []int{10, 20}
	if got := ExpectedAverage(vals, 0, 2); got != 15 {
		t.Errorf("avg = %v", got)
	}
	if got := ExpectedAverage(vals, 1, 2); got != 20 {
		t.Errorf("avg with repeat = %v", got)
	}
	// Default ramp 50+i: window of 4 starting at consumed c averages
	// 50+c+1.5.
	if got := ExpectedAverage(nil, 3, 4); got != 54.5 {
		t.Errorf("ramp avg = %v", got)
	}
}

func TestDescribe(t *testing.T) {
	r := DisplayRequest{N: 4, Response: 51.5, Elapsed: 2500 * time.Microsecond}
	if s := r.Describe(); !strings.Contains(s, "avg(4) = 51.500") || !strings.Contains(s, "2.5ms") {
		t.Errorf("Describe = %q", s)
	}
}
