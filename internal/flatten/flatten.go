// Package flatten lowers the structured control flow of module procedures
// into flat label+goto form.
//
// Why this pass exists: the paper's restore blocks (Figure 8) jump from the
// top of a procedure to resume labels that sit inside loops — legal in K&R C,
// but Go rejects any goto that jumps into a block. Flattening rewrites a
// procedure so that every statement, and therefore every resume label the
// transform later needs, is at the top level of the function body:
//
//   - all local variable declarations are hoisted (alpha-renamed when block
//     scoping reused a name) to a single declaration group at the top, with
//     explicit zero-assignments at the original declaration sites so block
//     re-entry semantics are preserved;
//   - if/else, all for forms, range and switch are lowered to conditional
//     gotos (`if !cond { goto L }`) and labels;
//   - break/continue (labeled or not) become gotos.
//
// The output is still a module-subset program (it re-checks), still valid
// Go, and observationally equivalent to the input — the equivalence is
// property-tested against the interpreter in flatten_test.go.
//
// Known, documented deviations (irrelevant to instrumented code and
// unobservable within the subset): a hoisted slice variable without
// initializer is re-zeroed to an empty (not nil) slice, and a pointer local
// declared without initializer is not re-zeroed on block re-entry.
package flatten

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"

	"repro/internal/lang"
)

// Result describes one flattened function.
type Result struct {
	// Locals lists every function-scoped variable after hoisting and
	// renaming: parameters first, then locals in declaration order. This
	// is exactly the candidate capture set for the transform.
	Locals []Local
	// Labels lists the labels the pass generated (for pruning).
	Labels []string
}

// Local is one hoisted variable.
type Local struct {
	Name    string
	Type    lang.Type
	IsParam bool
}

// Function flattens the named procedure in place. The program must be
// checked; info is consumed for identifier resolution and expression types.
// After flattening, the program's AST no longer matches info — reprint and
// re-check before further analysis.
func Function(prog *lang.Program, info *lang.Info, name string) (*Result, error) {
	fn, ok := prog.Funcs[name]
	if !ok {
		return nil, fmt.Errorf("flatten: no function %s", name)
	}
	f := &flattener{
		prog:    prog,
		info:    info,
		fn:      fn,
		renames: map[*lang.VarDef]string{},
		taken:   map[string]bool{},
	}
	return f.run()
}

type flattener struct {
	prog *lang.Program
	info *lang.Info
	fn   *lang.Func

	renames map[*lang.VarDef]string
	taken   map[string]bool
	labelN  int
	tmpN    int

	out    []ast.Stmt
	labels []string
	locals []Local

	// pendingLabel holds a label to attach to the next emitted statement.
	pendingLabels []string

	loops []loopCtx
	err   error
}

type loopCtx struct {
	userLabel string
	breakLbl  string
	contLbl   string
}

func (f *flattener) run() (*Result, error) {
	// Reserve existing names: all variables of this function and all user
	// labels, so generated names cannot collide.
	for _, v := range f.info.FuncVars[f.fn.Name] {
		f.taken[v.Name] = true
	}
	for _, l := range f.info.Labels[f.fn.Name] {
		f.taken[l] = true
	}
	for _, p := range f.fn.Params {
		f.locals = append(f.locals, Local{Name: p.Name, Type: p.Type, IsParam: true})
	}

	// Pass 1: assign unique names to every local (params keep theirs; the
	// checker already rejects param shadowing at the top scope only, so
	// locals may shadow params and each other across blocks).
	f.renameLocals()
	if f.err != nil {
		return nil, f.err
	}

	// Pass 2: lower the body.
	f.stmts(f.fn.Decl.Body.List)
	if f.err != nil {
		return nil, f.err
	}
	f.flushLabels()

	// Assemble: hoisted declarations, then the flattened statements.
	var body []ast.Stmt
	if decl := f.hoistedDecl(); decl != nil {
		body = append(body, decl)
	}
	body = append(body, f.out...)
	f.fn.Decl.Body.List = body
	return &Result{Locals: f.locals, Labels: f.labels}, nil
}

// renameLocals walks the body re-resolving declarations the way the checker
// scoped them, assigning each local VarDef a function-unique name.
func (f *flattener) renameLocals() {
	seen := map[string]int{}
	for _, p := range f.fn.Params {
		seen[p.Name] = 1
	}
	for _, v := range f.info.FuncVars[f.fn.Name] {
		if v.IsParam || v.Name == "_" {
			continue
		}
		n := seen[v.Name]
		seen[v.Name] = n + 1
		newName := v.Name
		if n > 0 {
			for {
				newName = v.Name + "_" + strconv.Itoa(n+1)
				if !f.taken[newName] {
					break
				}
				n++
			}
			f.taken[newName] = true
			f.renames[v] = newName
		}
		f.locals = append(f.locals, Local{Name: newName, Type: v.Type})
	}
	// Apply renames to every identifier occurrence.
	ast.Inspect(f.fn.Decl.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		if d := f.info.VarOf(id); d != nil {
			if nn, ok := f.renames[d]; ok {
				id.Name = nn
			}
		}
		return true
	})
}

func (f *flattener) hoistedDecl() ast.Stmt {
	var specs []ast.Spec
	for _, l := range f.locals {
		if l.IsParam {
			continue
		}
		specs = append(specs, &ast.ValueSpec{
			Names: []*ast.Ident{ast.NewIdent(l.Name)},
			Type:  TypeExpr(l.Type),
		})
	}
	if len(specs) == 0 {
		return nil
	}
	return &ast.DeclStmt{Decl: &ast.GenDecl{Tok: token.VAR, Specs: specs}}
}

func (f *flattener) failf(pos token.Pos, format string, args ...any) {
	if f.err == nil {
		p := f.prog.Fset.Position(pos)
		f.err = fmt.Errorf("flatten: %s: %s", p, fmt.Sprintf(format, args...))
	}
}

func (f *flattener) newLabel() string {
	for {
		f.labelN++
		name := "mhF" + strconv.Itoa(f.labelN)
		if !f.taken[name] {
			f.taken[name] = true
			f.labels = append(f.labels, name)
			return name
		}
	}
}

func (f *flattener) newTemp(t lang.Type) string {
	for {
		f.tmpN++
		name := "mhTmp" + strconv.Itoa(f.tmpN)
		if !f.taken[name] {
			f.taken[name] = true
			f.locals = append(f.locals, Local{Name: name, Type: t})
			return name
		}
	}
}

// emit appends a statement, attaching any pending labels.
func (f *flattener) emit(s ast.Stmt) {
	for i := len(f.pendingLabels) - 1; i >= 0; i-- {
		s = &ast.LabeledStmt{Label: ast.NewIdent(f.pendingLabels[i]), Stmt: s}
	}
	f.pendingLabels = nil
	f.out = append(f.out, s)
}

// mark queues a label for the next statement.
func (f *flattener) mark(label string) {
	f.pendingLabels = append(f.pendingLabels, label)
}

// flushLabels materializes trailing labels onto an empty statement.
func (f *flattener) flushLabels() {
	if len(f.pendingLabels) > 0 {
		f.emit(&ast.EmptyStmt{Implicit: false})
	}
}

func (f *flattener) gotoStmt(label string) ast.Stmt {
	return &ast.BranchStmt{Tok: token.GOTO, Label: ast.NewIdent(label)}
}

// condGoto emits `if !(cond) { goto label }` (or the positive form).
func (f *flattener) condGoto(cond ast.Expr, negate bool, label string) {
	if negate {
		cond = &ast.UnaryExpr{Op: token.NOT, X: &ast.ParenExpr{X: cond}}
	}
	f.emit(&ast.IfStmt{
		Cond: cond,
		Body: &ast.BlockStmt{List: []ast.Stmt{f.gotoStmt(label)}},
	})
}

func (f *flattener) stmts(list []ast.Stmt) {
	for _, s := range list {
		f.stmt(s)
		if f.err != nil {
			return
		}
	}
}

func (f *flattener) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		f.stmts(st.List)
	case *ast.DeclStmt:
		f.lowerDecl(st)
	case *ast.AssignStmt:
		f.lowerAssign(st)
	case *ast.LabeledStmt:
		f.lowerLabeled(st)
	case *ast.IfStmt:
		f.lowerIf(st)
	case *ast.ForStmt:
		f.lowerFor(st, "")
	case *ast.RangeStmt:
		f.lowerRange(st, "")
	case *ast.SwitchStmt:
		f.lowerSwitch(st, "")
	case *ast.BranchStmt:
		f.lowerBranch(st)
	case *ast.ReturnStmt, *ast.ExprStmt, *ast.IncDecStmt:
		f.emit(s)
	case *ast.EmptyStmt:
		// drop
	default:
		f.failf(s.Pos(), "cannot flatten statement %T", s)
	}
}

func (f *flattener) lowerDecl(st *ast.DeclStmt) {
	gd := st.Decl.(*ast.GenDecl)
	for _, spec := range gd.Specs {
		vs := spec.(*ast.ValueSpec)
		for i, id := range vs.Names {
			if len(vs.Values) > i {
				f.emit(&ast.AssignStmt{
					Lhs: []ast.Expr{ast.NewIdent(id.Name)},
					Tok: token.ASSIGN,
					Rhs: []ast.Expr{vs.Values[i]},
				})
				continue
			}
			// Re-zero at the declaration site so block re-entry behaves
			// like a fresh declaration.
			d := f.info.Defs[id]
			if d == nil {
				f.failf(id.Pos(), "no definition recorded for %s", id.Name)
				return
			}
			if z := ZeroExpr(d.Type); z != nil {
				f.emit(&ast.AssignStmt{
					Lhs: []ast.Expr{ast.NewIdent(id.Name)},
					Tok: token.ASSIGN,
					Rhs: []ast.Expr{z},
				})
			}
		}
	}
}

func (f *flattener) lowerAssign(st *ast.AssignStmt) {
	if st.Tok == token.DEFINE {
		// After hoisting, := is a plain assignment.
		f.emit(&ast.AssignStmt{Lhs: st.Lhs, Tok: token.ASSIGN, Rhs: st.Rhs})
		return
	}
	f.emit(st)
}

func (f *flattener) lowerLabeled(st *ast.LabeledStmt) {
	switch inner := st.Stmt.(type) {
	case *ast.ForStmt:
		f.lowerFor(inner, st.Label.Name)
	case *ast.RangeStmt:
		f.lowerRange(inner, st.Label.Name)
	case *ast.SwitchStmt:
		f.lowerSwitch(inner, st.Label.Name)
	default:
		f.mark(st.Label.Name)
		f.stmt(st.Stmt)
	}
}

func (f *flattener) lowerIf(st *ast.IfStmt) {
	if st.Init != nil {
		f.stmt(st.Init)
	}
	end := f.newLabel()
	if st.Else == nil {
		f.condGoto(st.Cond, true, end)
		f.stmts(st.Body.List)
		f.mark(end)
		f.flushLabelsBeforeNext()
		return
	}
	elseL := f.newLabel()
	f.condGoto(st.Cond, true, elseL)
	f.stmts(st.Body.List)
	f.emit(f.gotoStmt(end))
	f.mark(elseL)
	f.stmt(st.Else)
	f.mark(end)
	f.flushLabelsBeforeNext()
}

// flushLabelsBeforeNext is a no-op: pending labels attach to whatever comes
// next, and run() materializes stragglers at the end. It exists to make the
// control-flow points explicit at call sites.
func (f *flattener) flushLabelsBeforeNext() {}

func (f *flattener) lowerFor(st *ast.ForStmt, userLabel string) {
	if st.Init != nil {
		f.stmt(st.Init)
	}
	loop := f.newLabel()
	end := f.newLabel()
	cont := loop
	if st.Post != nil {
		cont = f.newLabel()
	}
	if userLabel != "" {
		// goto <userLabel> re-enters at the condition (init already ran,
		// matching Go, where the label is on the for statement itself and
		// a goto to it re-runs init; module programs do not goto loop
		// labels, and the checker's Go output compiles either way).
		f.mark(userLabel)
	}
	f.mark(loop)
	if st.Cond != nil {
		f.condGoto(st.Cond, true, end)
	} else {
		f.flushLabels()
	}
	f.loops = append(f.loops, loopCtx{userLabel: userLabel, breakLbl: end, contLbl: cont})
	f.stmts(st.Body.List)
	f.loops = f.loops[:len(f.loops)-1]
	if st.Post != nil {
		f.mark(cont)
		f.stmt(st.Post)
	}
	f.emit(f.gotoStmt(loop))
	f.mark(end)
}

func (f *flattener) lowerRange(st *ast.RangeStmt, userLabel string) {
	elemType, ok := f.rangeElemType(st)
	if !ok {
		return
	}
	sliceTmp := f.newTemp(lang.Slice{Elem: elemType})
	idxTmp := f.newTemp(lang.IntType)
	f.emit(&ast.AssignStmt{
		Lhs: []ast.Expr{ast.NewIdent(sliceTmp)},
		Tok: token.ASSIGN,
		Rhs: []ast.Expr{st.X},
	})
	f.emit(&ast.AssignStmt{
		Lhs: []ast.Expr{ast.NewIdent(idxTmp)},
		Tok: token.ASSIGN,
		Rhs: []ast.Expr{&ast.BasicLit{Kind: token.INT, Value: "0"}},
	})
	loop := f.newLabel()
	end := f.newLabel()
	cont := f.newLabel()
	if userLabel != "" {
		f.mark(userLabel)
	}
	f.mark(loop)
	f.condGoto(&ast.BinaryExpr{
		X:  ast.NewIdent(idxTmp),
		Op: token.LSS,
		Y:  &ast.CallExpr{Fun: ast.NewIdent("len"), Args: []ast.Expr{ast.NewIdent(sliceTmp)}},
	}, true, end)
	if st.Key != nil {
		if name := st.Key.(*ast.Ident).Name; name != "_" {
			f.emit(&ast.AssignStmt{
				Lhs: []ast.Expr{ast.NewIdent(name)},
				Tok: token.ASSIGN,
				Rhs: []ast.Expr{ast.NewIdent(idxTmp)},
			})
		}
	}
	if st.Value != nil {
		if name := st.Value.(*ast.Ident).Name; name != "_" {
			f.emit(&ast.AssignStmt{
				Lhs: []ast.Expr{ast.NewIdent(name)},
				Tok: token.ASSIGN,
				Rhs: []ast.Expr{&ast.IndexExpr{X: ast.NewIdent(sliceTmp), Index: ast.NewIdent(idxTmp)}},
			})
		}
	}
	f.loops = append(f.loops, loopCtx{userLabel: userLabel, breakLbl: end, contLbl: cont})
	f.stmts(st.Body.List)
	f.loops = f.loops[:len(f.loops)-1]
	f.mark(cont)
	f.emit(&ast.IncDecStmt{X: ast.NewIdent(idxTmp), Tok: token.INC})
	f.emit(f.gotoStmt(loop))
	f.mark(end)
}

// rangeElemType recovers the element type of the ranged slice from the
// declared key/value variables (their defs carry checked types).
func (f *flattener) rangeElemType(st *ast.RangeStmt) (lang.Type, bool) {
	if t := f.info.TypeOf(st.X); t != nil {
		if sl, ok := t.(lang.Slice); ok {
			return sl.Elem, true
		}
	}
	if st.Value != nil {
		if d := f.info.Defs[st.Value.(*ast.Ident)]; d != nil {
			return d.Type, true
		}
	}
	f.failf(st.Pos(), "cannot determine range element type")
	return nil, false
}

func (f *flattener) lowerSwitch(st *ast.SwitchStmt, userLabel string) {
	if st.Init != nil {
		f.stmt(st.Init)
	}
	end := f.newLabel()
	var tagExpr ast.Expr
	if st.Tag != nil {
		tagType := f.info.TypeOf(st.Tag)
		if tagType == nil {
			f.failf(st.Tag.Pos(), "switch tag has no recorded type")
			return
		}
		tmp := f.newTemp(tagType)
		f.emit(&ast.AssignStmt{
			Lhs: []ast.Expr{ast.NewIdent(tmp)},
			Tok: token.ASSIGN,
			Rhs: []ast.Expr{st.Tag},
		})
		tagExpr = ast.NewIdent(tmp)
	}

	type armInfo struct {
		label string
		cc    *ast.CaseClause
	}
	var arms []armInfo
	defaultLbl := end
	var defaultCC *ast.CaseClause
	for _, clause := range st.Body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			defaultCC = cc
			defaultLbl = f.newLabel()
			continue
		}
		arm := armInfo{label: f.newLabel(), cc: cc}
		arms = append(arms, arm)
		for _, e := range cc.List {
			if tagExpr != nil {
				f.condGoto(&ast.BinaryExpr{X: tagExpr, Op: token.EQL, Y: e}, false, arm.label)
			} else {
				f.condGoto(e, false, arm.label)
			}
		}
	}
	f.emit(f.gotoStmt(defaultLbl))

	_ = userLabel
	f.loops = append(f.loops, loopCtx{userLabel: userLabel, breakLbl: end, contLbl: ""})
	for _, arm := range arms {
		f.mark(arm.label)
		f.flushLabels()
		f.stmts(arm.cc.Body)
		f.emit(f.gotoStmt(end))
	}
	if defaultCC != nil {
		f.mark(defaultLbl)
		f.flushLabels()
		f.stmts(defaultCC.Body)
		f.emit(f.gotoStmt(end))
	}
	f.loops = f.loops[:len(f.loops)-1]
	f.mark(end)
}

func (f *flattener) lowerBranch(st *ast.BranchStmt) {
	switch st.Tok {
	case token.GOTO:
		f.emit(st)
	case token.BREAK:
		lbl := f.findLoop(st, "", true)
		if st.Label != nil {
			lbl = f.findLoop(st, st.Label.Name, true)
		}
		if lbl != "" {
			f.emit(f.gotoStmt(lbl))
		}
	case token.CONTINUE:
		lbl := f.findLoop(st, "", false)
		if st.Label != nil {
			lbl = f.findLoop(st, st.Label.Name, false)
		}
		if lbl != "" {
			f.emit(f.gotoStmt(lbl))
		}
	default:
		f.failf(st.Pos(), "cannot flatten branch %s", st.Tok)
	}
}

// findLoop resolves break/continue to the matching enclosing construct's
// label. For unlabeled continue, switches (contLbl == "") are skipped, as
// continue inside a switch targets the loop around it.
func (f *flattener) findLoop(st *ast.BranchStmt, userLabel string, isBreak bool) string {
	for i := len(f.loops) - 1; i >= 0; i-- {
		ctx := f.loops[i]
		if userLabel != "" && ctx.userLabel != userLabel {
			continue
		}
		if !isBreak && ctx.contLbl == "" {
			if userLabel != "" {
				break
			}
			continue
		}
		if isBreak {
			return ctx.breakLbl
		}
		return ctx.contLbl
	}
	f.failf(st.Pos(), "no enclosing construct for %s %s", st.Tok, userLabel)
	return ""
}

// TypeExpr renders a module-subset type as a type expression.
func TypeExpr(t lang.Type) ast.Expr {
	switch tt := t.(type) {
	case lang.Basic:
		return ast.NewIdent(tt.String())
	case lang.Slice:
		return &ast.ArrayType{Elt: TypeExpr(tt.Elem)}
	case lang.Pointer:
		return &ast.StarExpr{X: TypeExpr(tt.Elem)}
	case *lang.Struct:
		return ast.NewIdent(tt.Name)
	default:
		return ast.NewIdent("int")
	}
}

// ZeroExpr renders the zero value of a type as an expression, or nil when
// the subset cannot express it (pointers, which have no nil literal in the
// module language).
func ZeroExpr(t lang.Type) ast.Expr {
	switch tt := t.(type) {
	case lang.Basic:
		switch tt.B {
		case lang.Int:
			return &ast.BasicLit{Kind: token.INT, Value: "0"}
		case lang.Float64:
			return &ast.BasicLit{Kind: token.FLOAT, Value: "0.0"}
		case lang.Bool:
			return ast.NewIdent("false")
		case lang.String:
			return &ast.BasicLit{Kind: token.STRING, Value: `""`}
		}
	case lang.Slice:
		return &ast.CallExpr{
			Fun:  ast.NewIdent("make"),
			Args: []ast.Expr{TypeExpr(tt), &ast.BasicLit{Kind: token.INT, Value: "0"}},
		}
	case *lang.Struct:
		return &ast.CompositeLit{Type: ast.NewIdent(tt.Name)}
	case lang.Pointer:
		return nil
	}
	return nil
}

// PruneLabels removes labels in fn's body that no goto targets. Go rejects
// unused labels, so this must run before emitting compilable source. keep
// lists labels to preserve regardless (e.g. the transform's resume labels,
// added later).
func PruneLabels(fn *ast.FuncDecl, keep map[string]bool) {
	used := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if br, ok := n.(*ast.BranchStmt); ok && br.Label != nil {
			used[br.Label.Name] = true
		}
		return true
	})
	fn.Body.List = pruneStmtList(fn.Body.List, used, keep)
}

func pruneStmtList(list []ast.Stmt, used, keep map[string]bool) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(list))
	for _, s := range list {
		s = pruneStmt(s, used, keep)
		if s == nil {
			continue
		}
		out = append(out, s)
	}
	return out
}

func pruneStmt(s ast.Stmt, used, keep map[string]bool) ast.Stmt {
	switch st := s.(type) {
	case *ast.LabeledStmt:
		inner := pruneStmt(st.Stmt, used, keep)
		if used[st.Label.Name] || keep[st.Label.Name] {
			if inner == nil {
				inner = &ast.EmptyStmt{}
			}
			st.Stmt = inner
			return st
		}
		if inner == nil {
			return nil
		}
		if _, isEmpty := inner.(*ast.EmptyStmt); isEmpty {
			return nil
		}
		return inner
	case *ast.BlockStmt:
		st.List = pruneStmtList(st.List, used, keep)
		return st
	case *ast.IfStmt:
		st.Body.List = pruneStmtList(st.Body.List, used, keep)
		if st.Else != nil {
			st.Else = pruneStmt(st.Else, used, keep)
		}
		return st
	case *ast.EmptyStmt:
		return nil
	default:
		return s
	}
}
