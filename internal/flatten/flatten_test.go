package flatten

import (
	"fmt"
	"go/ast"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
)

func load(t *testing.T, src string) (*lang.Program, *lang.Info) {
	t.Helper()
	prog, err := lang.ParseSource("mod.go", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := lang.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, info
}

// flattenAll flattens every function of src and returns the reloaded
// (printed, reparsed, rechecked) program — proving the output is valid Go
// and still in the module subset.
func flattenAll(t *testing.T, src string) (*lang.Program, *lang.Info, string) {
	t.Helper()
	prog, info := load(t, src)
	for _, name := range prog.FuncOrder {
		if _, err := Function(prog, info, name); err != nil {
			t.Fatalf("flatten %s: %v", name, err)
		}
		PruneLabels(prog.Funcs[name].Decl, nil)
	}
	out, err := lang.FormatSingle(prog)
	if err != nil {
		t.Fatalf("format flattened program: %v", err)
	}
	nprog, ninfo, err := lang.Reload(prog)
	if err != nil {
		t.Fatalf("reload flattened program: %v\n%s", err, out)
	}
	return nprog, ninfo, out
}

// equivCheck compares fn(args) between the original and flattened programs.
func equivCheck(t *testing.T, src, fn string, argSets [][]any) {
	t.Helper()
	prog, info := load(t, src)
	orig := interp.New(prog, info, nil, interp.WithMaxSteps(2_000_000))
	fprog, finfo, fsrc := flattenAll(t, src)
	flat := interp.New(fprog, finfo, nil, interp.WithMaxSteps(2_000_000))
	for _, args := range argSets {
		want, werr := orig.Call(fn, args...)
		got, gerr := flat.Call(fn, args...)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%s(%v): original err=%v, flattened err=%v\nflattened source:\n%s", fn, args, werr, gerr, fsrc)
		}
		if werr != nil {
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s(%v): original=%v flattened=%v\nflattened source:\n%s", fn, args, want, got, fsrc)
		}
	}
}

func intArgs(sets ...[]int) [][]any {
	out := make([][]any, len(sets))
	for i, s := range sets {
		args := make([]any, len(s))
		for j, v := range s {
			args[j] = v
		}
		out[i] = args
	}
	return out
}

func TestFlattenIfElse(t *testing.T) {
	equivCheck(t, `package p
func main() {}
func f(x int) int {
	r := 0
	if x > 10 {
		r = 1
	} else if x > 5 {
		r = 2
	} else {
		r = 3
	}
	if x == 7 {
		r += 100
	}
	return r
}
`, "f", intArgs([]int{0}, []int{6}, []int{7}, []int{11}))
}

func TestFlattenLoops(t *testing.T) {
	equivCheck(t, `package p
func main() {}
func f(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			continue
		}
		if i > 7 {
			break
		}
		total += i
	}
	j := 0
	for j < 4 {
		total += 100
		j++
	}
	k := 0
	for {
		k++
		if k >= 2 {
			break
		}
	}
	return total + k
}
`, "f", intArgs([]int{0}, []int{3}, []int{10}, []int{20}))
}

func TestFlattenNestedLabeledLoops(t *testing.T) {
	equivCheck(t, `package p
func main() {}
func f(n int) int {
	count := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j > i {
				continue outer
			}
			if count > 50 {
				break outer
			}
			count++
		}
		count += 1000
	}
	return count
}
`, "f", intArgs([]int{0}, []int{2}, []int{5}, []int{10}))
}

func TestFlattenSwitch(t *testing.T) {
	equivCheck(t, `package p
func main() {}
func f(x int) int {
	r := 0
	switch x {
	case 1, 2:
		r = 10
	case 3:
		r = 20
		break
	default:
		r = 30
	}
	switch {
	case x > 100:
		r += 1
	case x > 10:
		r += 2
	}
	switch y := x * 2; y {
	case 4:
		r += 1000
	}
	return r
}
`, "f", intArgs([]int{1}, []int{2}, []int{3}, []int{4}, []int{50}, []int{200}))
}

func TestFlattenSwitchEvaluatesTagOnce(t *testing.T) {
	// The tag is hoisted into a temp; calls in the tag run exactly once.
	equivCheck(t, `package p
func main() {}
func g(p *int) int {
	*p = *p + 1
	return *p
}
func f(x int) int {
	calls := 0
	switch g(&calls) {
	case 1:
		x += 10
	case 2:
		x += 20
	}
	return x*100 + calls
}
`, "f", intArgs([]int{0}, []int{5}))
}

func TestFlattenRange(t *testing.T) {
	equivCheck(t, `package p
func main() {}
func f(n int) int {
	var s []int
	for i := 0; i < n; i++ {
		s = append(s, i*i)
	}
	total := 0
	for i, v := range s {
		if v > 20 {
			break
		}
		total += i + v
	}
	for _, v := range s {
		total += v
	}
	for i := range s {
		total += i
	}
	return total
}
`, "f", intArgs([]int{0}, []int{3}, []int{8}))
}

func TestFlattenShadowing(t *testing.T) {
	equivCheck(t, `package p
func main() {}
func f(x int) int {
	r := x
	{
		r := 100
		r += x
		{
			var r int
			r = 7
			x += r
		}
		x += r
	}
	return r + x
}
`, "f", intArgs([]int{1}, []int{5}))
}

func TestFlattenBlockReentryRezeros(t *testing.T) {
	// A var declared inside a loop body must be fresh each iteration.
	equivCheck(t, `package p
func main() {}
func f(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		var x int
		x += i
		var s string
		s += "a"
		total += x + len(s)
	}
	return total
}
`, "f", intArgs([]int{0}, []int{1}, []int{4}))
}

func TestFlattenGotoPreserved(t *testing.T) {
	equivCheck(t, `package p
func main() {}
func f(a int, b int) int {
loop:
	if b != 0 {
		a, b = b, a%b
		goto loop
	}
	return a
}
`, "f", intArgs([]int{48, 36}, []int{17, 5}, []int{0, 9}))
}

func TestFlattenStructsAndPointers(t *testing.T) {
	equivCheck(t, `package p
type Pt struct {
	X int
	Y int
}
func main() {}
func bump(p *Pt, d int) {
	p.X += d
}
func f(n int) int {
	var pts []Pt
	for i := 0; i < n; i++ {
		pts = append(pts, Pt{X: i, Y: i * 2})
	}
	total := 0
	for i := range pts {
		bump(&pts[i], 10)
	}
	for _, p := range pts {
		total += p.X + p.Y
	}
	var q Pt
	q.X = 5
	r := q
	r.X = 50
	return total + q.X + r.X
}
`, "f", intArgs([]int{0}, []int{2}, []int{5}))
}

func TestFlattenMultiReturn(t *testing.T) {
	equivCheck(t, `package p
func main() {}
func divmod(a int, b int) (int, int) {
	return a / b, a % b
}
func f(a int, b int) int {
	q, r := divmod(a, b)
	for i := 0; i < 2; i++ {
		q, r = divmod(q+i, b)
	}
	return q*1000 + r
}
`, "f", intArgs([]int{100, 7}, []int{17, 3}))
}

// TestFlattenedComputeStillServes (checkpoint for the transform): the
// Figure 3 module, flattened, still runs as a module and answers requests.
func TestFlattenedComputeStillServes(t *testing.T) {
	src := `package compute

func main() {
	var n int
	var response float64
	mh.Init()
	for {
		for mh.QueryIfMsgs("display") {
			mh.Read("display", &n)
			compute(n, n, &response)
			mh.Write("display", response)
		}
		if mh.QueryIfMsgs("sensor") {
			compute(1, 1, &response)
		}
		mh.Sleep(2)
	}
}

func compute(num int, n int, rp *float64) {
	var temper int
	if n <= 0 {
		*rp = 0.0
		return
	}
	compute(num, n-1, rp)
	mh.ReconfigPoint("R")
	mh.Read("sensor", &temper)
	*rp = *rp + float64(temper)/float64(num)
}
`
	nprog, _, out := flattenAll(t, src)
	// The reconfiguration point marker must survive flattening.
	if !strings.Contains(out, `mh.ReconfigPoint("R")`) {
		t.Errorf("marker lost:\n%s", out)
	}
	// All labels are at the top level: no label may appear inside an if
	// body (the only block form the flattener emits).
	for _, name := range nprog.FuncOrder {
		fn := nprog.Funcs[name]
		for _, s := range fn.Decl.Body.List {
			checkNoNestedLabels(t, s, false)
		}
	}
}

func checkNoNestedLabels(t *testing.T, s ast.Stmt, inside bool) {
	switch st := s.(type) {
	case *ast.LabeledStmt:
		if inside {
			t.Errorf("label %s nested inside a block", st.Label.Name)
		}
		checkNoNestedLabels(t, st.Stmt, inside)
	case *ast.IfStmt:
		for _, inner := range st.Body.List {
			checkNoNestedLabels(t, inner, true)
		}
	case *ast.BlockStmt:
		for _, inner := range st.List {
			checkNoNestedLabels(t, inner, true)
		}
	}
}

func TestPruneLabels(t *testing.T) {
	prog, info := load(t, `package p
func main() {}
func f(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
`)
	if _, err := Function(prog, info, "f"); err != nil {
		t.Fatal(err)
	}
	// Before pruning, generated labels exist; after pruning with an empty
	// keep set, only goto-targeted ones remain.
	PruneLabels(prog.Funcs["f"].Decl, nil)
	src, err := lang.FormatSingle(prog)
	if err != nil {
		t.Fatal(err)
	}
	// The loop-exit label of a loop with no break is unused and pruned.
	used := map[string]bool{}
	ast.Inspect(prog.Funcs["f"].Decl, func(n ast.Node) bool {
		if br, ok := n.(*ast.BranchStmt); ok && br.Label != nil {
			used[br.Label.Name] = true
		}
		return true
	})
	ast.Inspect(prog.Funcs["f"].Decl, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok && !used[ls.Label.Name] {
			t.Errorf("unused label %s survived pruning:\n%s", ls.Label.Name, src)
		}
		return true
	})
}

func TestPruneKeepsRequestedLabels(t *testing.T) {
	prog, info := load(t, `package p
func main() {}
func f() int {
	x := 0
	if x == 0 {
		x = 1
	}
	return x
}
`)
	res, err := Function(prog, info, "f")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) == 0 {
		t.Fatal("no generated labels")
	}
	keep := map[string]bool{res.Labels[0]: true}
	PruneLabels(prog.Funcs["f"].Decl, keep)
	found := false
	ast.Inspect(prog.Funcs["f"].Decl, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok && ls.Label.Name == res.Labels[0] {
			found = true
		}
		return true
	})
	if !found {
		t.Errorf("kept label %s was pruned", res.Labels[0])
	}
}

func TestResultLocals(t *testing.T) {
	prog, info := load(t, `package p
func main() {}
func f(a int, b *float64) int {
	x := 1
	var y string
	_ = y
	for i := 0; i < 3; i++ {
		x += i
	}
	return x
}
`)
	res, err := Function(prog, info, "f")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, l := range res.Locals {
		names = append(names, l.Name)
	}
	want := []string{"a", "b", "x", "y", "i"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("locals = %v, want %v", names, want)
	}
	if !res.Locals[0].IsParam || res.Locals[2].IsParam {
		t.Error("param flags wrong")
	}
	if !res.Locals[1].Type.Equal(lang.Pointer{Elem: lang.FloatType}) {
		t.Errorf("b type = %s", res.Locals[1].Type)
	}
}

func TestFlattenUnknownFunction(t *testing.T) {
	prog, info := load(t, `package p
func main() {}
`)
	if _, err := Function(prog, info, "ghost"); err == nil {
		t.Error("flattening unknown function succeeded")
	}
}

// ---- randomized equivalence property test ----

type progGen struct {
	r      *rand.Rand
	vars   []string
	loopN  int
	depth  int
	inLoop int
	b      *strings.Builder
}

func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(2) == 0 {
			return g.vars[g.r.Intn(len(g.vars))]
		}
		return fmt.Sprintf("%d", g.r.Intn(20)-5)
	}
	ops := []string{"+", "-", "*", "%%safe", "/safe"}
	op := ops[g.r.Intn(len(ops))]
	a, b := g.expr(depth-1), g.expr(depth-1)
	switch op {
	case "%%safe":
		return fmt.Sprintf("((%s) %% %d)", a, g.r.Intn(6)+1)
	case "/safe":
		return fmt.Sprintf("((%s) / %d)", a, g.r.Intn(6)+1)
	default:
		return fmt.Sprintf("((%s) %s (%s))", a, op, b)
	}
}

func (g *progGen) cond() string {
	cmp := []string{"<", "<=", ">", ">=", "==", "!="}[g.r.Intn(6)]
	return fmt.Sprintf("(%s) %s (%s)", g.expr(1), cmp, g.expr(1))
}

func (g *progGen) indent(n int) {
	for i := 0; i < n; i++ {
		g.b.WriteString("\t")
	}
}

func (g *progGen) stmts(n, ind int) {
	for i := 0; i < n; i++ {
		g.stmt(ind)
	}
}

func (g *progGen) stmt(ind int) {
	g.depth++
	defer func() { g.depth-- }()
	choices := 6
	if g.inLoop > 0 {
		choices = 8
	}
	if g.depth > 4 {
		choices = 2 // only assignments deep down
	}
	switch g.r.Intn(choices) {
	case 0:
		g.indent(ind)
		fmt.Fprintf(g.b, "%s = %s\n", g.vars[g.r.Intn(len(g.vars))], g.expr(2))
	case 1:
		g.indent(ind)
		fmt.Fprintf(g.b, "%s += %s\n", g.vars[g.r.Intn(len(g.vars))], g.expr(1))
	case 2: // if/else
		g.indent(ind)
		fmt.Fprintf(g.b, "if %s {\n", g.cond())
		g.stmts(1+g.r.Intn(2), ind+1)
		if g.r.Intn(2) == 0 {
			g.indent(ind)
			g.b.WriteString("} else {\n")
			g.stmts(1+g.r.Intn(2), ind+1)
		}
		g.indent(ind)
		g.b.WriteString("}\n")
	case 3: // bounded for
		g.loopN++
		v := fmt.Sprintf("i%d", g.loopN)
		g.indent(ind)
		fmt.Fprintf(g.b, "for %s := 0; %s < %d; %s++ {\n", v, v, g.r.Intn(5)+1, v)
		g.inLoop++
		g.vars = append(g.vars, v)
		g.stmts(1+g.r.Intn(2), ind+1)
		g.vars = g.vars[:len(g.vars)-1]
		g.inLoop--
		g.indent(ind)
		g.b.WriteString("}\n")
	case 4: // switch
		g.indent(ind)
		fmt.Fprintf(g.b, "switch (%s) %% 3 {\n", g.expr(1))
		for c := 0; c < 2; c++ {
			g.indent(ind)
			fmt.Fprintf(g.b, "case %d:\n", c)
			g.stmts(1, ind+1)
		}
		g.indent(ind)
		g.b.WriteString("default:\n")
		g.stmts(1, ind+1)
		g.indent(ind)
		g.b.WriteString("}\n")
	case 5: // nested block with shadowing decl
		g.indent(ind)
		g.b.WriteString("{\n")
		g.indent(ind + 1)
		fmt.Fprintf(g.b, "var acc int\n")
		g.indent(ind + 1)
		fmt.Fprintf(g.b, "acc = %s\n", g.expr(1))
		g.indent(ind + 1)
		fmt.Fprintf(g.b, "x += acc\n")
		g.indent(ind)
		g.b.WriteString("}\n")
	case 6: // break
		g.indent(ind)
		g.b.WriteString("if " + g.cond() + " {\n")
		g.indent(ind + 1)
		g.b.WriteString("break\n")
		g.indent(ind)
		g.b.WriteString("}\n")
	case 7: // continue
		g.indent(ind)
		g.b.WriteString("if " + g.cond() + " {\n")
		g.indent(ind + 1)
		g.b.WriteString("continue\n")
		g.indent(ind)
		g.b.WriteString("}\n")
	}
}

func genProgram(seed int64) string {
	g := &progGen{
		r:    rand.New(rand.NewSource(seed)),
		vars: []string{"x", "y", "z"},
		b:    &strings.Builder{},
	}
	g.b.WriteString("package p\n\nfunc main() {}\n\nfunc f(x int, y int) int {\n\tz := 0\n")
	g.stmts(4+g.r.Intn(4), 1)
	g.b.WriteString("\treturn x + 31*y + 1009*z\n}\n")
	return g.b.String()
}

// TestFlattenEquivalenceProperty: for randomly generated subset programs,
// the flattened form computes exactly what the original computes.
func TestFlattenEquivalenceProperty(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		src := genProgram(int64(seed))
		argSets := intArgs([]int{0, 0}, []int{1, 2}, []int{-3, 7}, []int{13, -5}, []int{100, 100})
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on seed %d: %v\nprogram:\n%s", seed, r, src)
				}
			}()
			equivCheck(t, src, "f", argSets)
		})
	}
}
