package replay

import (
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Canonical renders a recorded window in its deterministic form: one
// section per destination queue (sorted by endpoint), one line per
// delivery in QSeq order, each line carrying the queue sequence, the
// sending endpoint and the payload bytes. Trace identifiers, timestamps,
// routing epochs and the global interleaving are excluded — those vary
// across otherwise-identical runs — so two recordings of the same seeded
// workload render byte-identically. This is the form the determinism gate
// compares.
func Canonical(recs []Record) string {
	byQueue := map[string][]Record{}
	for _, r := range recs {
		byQueue[r.To] = append(byQueue[r.To], r)
	}
	queues := make([]string, 0, len(byQueue))
	for q := range byQueue {
		queues = append(queues, q)
	}
	sort.Strings(queues)
	var b strings.Builder
	for _, q := range queues {
		rs := byQueue[q]
		sort.Slice(rs, func(i, j int) bool { return rs[i].QSeq < rs[j].QSeq })
		fmt.Fprintf(&b, "queue %s (%d)\n", q, len(rs))
		for _, r := range rs {
			fmt.Fprintf(&b, "  %d %s %s\n", r.QSeq, r.From, hex.EncodeToString(r.Data))
		}
	}
	return b.String()
}

// InputsTo returns the records delivered to the named instance — the
// window a replay feeds it — in global-sequence order (per-queue order is
// preserved because QSeq order agrees with Seq order within one queue).
func InputsTo(recs []Record, instance string) []Record {
	var out []Record
	for _, r := range recs {
		if endpointInstance(r.To) == instance {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Output is one message a module emitted: the sending interface and the
// encoded payload.
type Output struct {
	Iface string `json:"iface"`
	Data  []byte `json:"data"`
}

// OutputsOf reconstructs the send sequence of the named instance from a
// recorded window. Records are appended at consumption, so the global ring
// order is the receivers' interleaving, not the sender's: a fan-out across
// replica queues may be consumed — and recorded — out of emission order.
// The sender's order is recovered from the trace span ids instead: the bus
// mints a globally monotonic span per write (batched sends reserve one id
// per message), so one sender's spans sort in emission order. A single
// send to multiple receivers carries one span, so records sharing a
// nonzero span id collapse to one output. On an untraced bus (all spans
// zero) ring order is the only signal: consecutive identical (iface,
// payload) records collapse instead — exact for single-receiver bindings,
// the common pipeline shape.
func OutputsOf(recs []Record, instance string) []Output {
	var sends []Record
	traced := true
	for _, r := range recs {
		if endpointInstance(r.From) == instance {
			sends = append(sends, r)
			if r.Trace.SpanID == 0 {
				traced = false
			}
		}
	}
	sort.Slice(sends, func(i, j int) bool {
		if traced && sends[i].Trace.SpanID != sends[j].Trace.SpanID {
			return sends[i].Trace.SpanID < sends[j].Trace.SpanID
		}
		return sends[i].Seq < sends[j].Seq
	})
	var out []Output
	var lastSpan uint64
	for i, r := range sends {
		if r.Trace.SpanID != 0 {
			if r.Trace.SpanID == lastSpan {
				continue
			}
			lastSpan = r.Trace.SpanID
		} else if i > 0 {
			prev := sends[i-1]
			if prev.Trace.SpanID == 0 && prev.From == r.From && string(prev.Data) == string(r.Data) {
				continue
			}
		}
		out = append(out, Output{Iface: endpointIface(r.From), Data: r.Data})
	}
	return out
}

// Divergence pinpoints the first output where two runs disagree.
type Divergence struct {
	// Index is the 0-based position in the output sequence.
	Index int `json:"index"`
	// Kind is "payload", "iface", "missing" (got ended early) or "extra"
	// (got kept sending).
	Kind string `json:"kind"`
	// WantIface/Want describe the recorded output at Index; GotIface/Got
	// the replayed one. Absent sides are empty.
	WantIface string `json:"want_iface,omitempty"`
	Want      []byte `json:"want,omitempty"`
	GotIface  string `json:"got_iface,omitempty"`
	Got       []byte `json:"got,omitempty"`
}

// String renders the divergence for error messages.
func (d *Divergence) String() string {
	if d == nil {
		return "outputs match"
	}
	switch d.Kind {
	case "missing":
		return fmt.Sprintf("output %d: recorded %s %x, replay produced nothing",
			d.Index, d.WantIface, d.Want)
	case "extra":
		return fmt.Sprintf("output %d: recording ended, replay produced %s %x",
			d.Index, d.GotIface, d.Got)
	case "iface":
		return fmt.Sprintf("output %d: recorded on %s, replayed on %s",
			d.Index, d.WantIface, d.GotIface)
	default:
		return fmt.Sprintf("output %d on %s: recorded %x, replayed %x",
			d.Index, d.WantIface, d.Want, d.Got)
	}
}

// DiffOutputs compares two output sequences byte-for-byte and returns the
// first divergence, or nil when they match exactly.
func DiffOutputs(want, got []Output) *Divergence {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i].Iface != got[i].Iface {
			return &Divergence{Index: i, Kind: "iface",
				WantIface: want[i].Iface, Want: want[i].Data,
				GotIface: got[i].Iface, Got: got[i].Data}
		}
		if string(want[i].Data) != string(got[i].Data) {
			return &Divergence{Index: i, Kind: "payload",
				WantIface: want[i].Iface, Want: want[i].Data,
				GotIface: got[i].Iface, Got: got[i].Data}
		}
	}
	if len(got) < len(want) {
		return &Divergence{Index: n, Kind: "missing",
			WantIface: want[n].Iface, Want: want[n].Data}
	}
	if len(got) > len(want) {
		return &Divergence{Index: n, Kind: "extra",
			GotIface: got[n].Iface, Got: got[n].Data}
	}
	return nil
}
