package rerun

import (
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/mh"
	"repro/internal/replay"
	"repro/internal/state"
	"repro/internal/telemetry/trace"
)

// doubler is a pipeline-stage module: read an integer, write its double.
func doubler(rt *mh.Runtime) {
	rt.Init()
	for {
		var n int
		rt.Read("in", &n)
		rt.Write("out", n*2)
	}
}

// encodeInt packs an integer the way a live module's Write would.
func encodeInt(t *testing.T, v int) []byte {
	t.Helper()
	data, err := codec.Default().EncodeValue(state.IntValue(int64(v)))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// window builds the recorded inputs of instance "stage": vals delivered in
// order to stage.in from up.out.
func window(t *testing.T, vals ...int) []replay.Record {
	t.Helper()
	recs := make([]replay.Record, 0, len(vals))
	for i, v := range vals {
		recs = append(recs, replay.Record{
			Seq: uint64(i + 1), QSeq: uint64(i + 1),
			From: "up.out", To: "stage.in",
			Trace: trace.Context{TraceID: 5, SpanID: uint64(100 + i)},
			Data:  encodeInt(t, v),
		})
	}
	return recs
}

func TestRunReplaysWindow(t *testing.T) {
	recs := window(t, 3, 5, 8)
	res, err := Run("stage", recs, Module{Name: "doubler", Body: doubler}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" {
		t.Fatalf("termination: %s", res.Err)
	}
	if res.Window != 3 || res.Consumed != 3 {
		t.Errorf("window=%d consumed=%d, want 3/3", res.Window, res.Consumed)
	}
	if len(res.Outputs) != 3 {
		t.Fatalf("outputs = %d, want 3", len(res.Outputs))
	}
	for i, v := range []int{6, 10, 16} {
		want := encodeInt(t, v)
		if res.Outputs[i].Iface != "out" || string(res.Outputs[i].Data) != string(want) {
			t.Errorf("output %d = %+v, want %x on out", i, res.Outputs[i], want)
		}
	}
	// Two runs over the same window are byte-identical — the property the
	// preflight gate's old-vs-candidate comparison rests on.
	res2, err := Run("stage", recs, Module{Name: "doubler", Body: doubler}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if div := replay.DiffOutputs(res.Outputs, res2.Outputs); div != nil {
		t.Errorf("re-run diverged: %v", div)
	}
}

func TestRunDetectsDivergentCandidate(t *testing.T) {
	recs := window(t, 3, 5, 8)
	good, err := Run("stage", recs, Module{Name: "doubler", Body: doubler}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	offByOne := func(rt *mh.Runtime) {
		rt.Init()
		for {
			var n int
			rt.Read("in", &n)
			rt.Write("out", n*2+1)
		}
	}
	bad, err := Run("stage", recs, Module{Name: "offbyone", Body: offByOne}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	div := replay.DiffOutputs(good.Outputs, bad.Outputs)
	if div == nil || div.Index != 0 || div.Kind != "payload" {
		t.Errorf("divergence = %+v, want payload mismatch at 0", div)
	}
}

func TestRunEmptyWindowTerminates(t *testing.T) {
	start := time.Now()
	res, err := Run("stage", nil, Module{Name: "doubler", Body: doubler}, Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" || res.Consumed != 0 || len(res.Outputs) != 0 {
		t.Errorf("empty window result = %+v", res)
	}
	// The first blocked read ends the body; no timeout is burned.
	if time.Since(start) > 2*time.Second {
		t.Error("empty window waited for the timeout")
	}
}

func TestRunSleepExitsAtWindowBoundary(t *testing.T) {
	// A module that polls with QueryIfMsgs and sleeps in between must exit
	// at input exhaustion via the virtual port's Done, not hang.
	poller := func(rt *mh.Runtime) {
		rt.Init()
		for {
			if rt.QueryIfMsgs("in") {
				var n int
				rt.Read("in", &n)
				rt.Write("out", n+1)
			} else {
				rt.Sleep(1)
			}
		}
	}
	res, err := Run("stage", window(t, 9), Module{Name: "poller", Body: poller}, Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" || res.Consumed != 1 || len(res.Outputs) != 1 {
		t.Errorf("poller result = %+v", res)
	}
}

func TestRunCapturesStateTrajectory(t *testing.T) {
	counter := func(rt *mh.Runtime) {
		rt.Init()
		processed := 0
		rt.RegisterSnapshot(func() (*state.State, error) {
			st := state.New(rt.Name())
			st.PushFrame(state.Frame{Func: "main", Location: 1,
				Vars: []state.Var{{Name: "processed", Value: state.IntValue(int64(processed))}}})
			return st, nil
		})
		for {
			var n int
			rt.Read("in", &n)
			processed++
			rt.Write("out", n)
		}
	}
	res, err := Run("stage", window(t, 1, 2, 3, 4), Module{Name: "counter", Body: counter},
		Options{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" {
		t.Fatalf("termination: %s", res.Err)
	}
	if len(res.States) == 0 {
		t.Error("no abstract-state checkpoints captured")
	}
}

func TestRunRejectsBodylessModule(t *testing.T) {
	if _, err := Run("stage", nil, Module{Name: "ghost"}, Options{}); err == nil ||
		!strings.Contains(err.Error(), "no body") {
		t.Errorf("bodyless module: %v", err)
	}
}

func TestRunTimeoutCutsOffStuckBody(t *testing.T) {
	stuck := func(rt *mh.Runtime) {
		rt.Init()
		var n int
		rt.Read("in", &n)
		// Block on something that is not the exhausted input.
		time.Sleep(1 * time.Second)
	}
	start := time.Now()
	res, err := Run("stage", window(t, 1), Module{Name: "stuck", Body: stuck},
		Options{Timeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Err, "timeout") {
		t.Errorf("stuck body err = %q, want timeout", res.Err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout did not cut the run off")
	}
}
