// Package rerun re-executes a recorded window against a module body
// in-process: a virtual bus port feeds the module its recorded inputs in
// per-queue delivery order, a virtual clock (zero sleep unit) compresses
// time, and the module's output sequence plus its abstract-state
// trajectory (periodic checkpoints, when the module registers a snapshot)
// are captured for diffing against the recording or against a candidate
// module's run. This is the replayer half of the record/replay subsystem
// — cmd/mhreplay drives it offline, the PreflightReplay gate drives it
// between restore_wait and commit.
package rerun

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/bus"
	"repro/internal/codec"
	"repro/internal/mh"
	"repro/internal/replay"
)

// Module is the runnable identity of a module under replay.
type Module struct {
	// Name is the module specification name (reporting only).
	Name string
	// Body runs the module against the runtime, exactly as Launch would.
	Body func(rt *mh.Runtime)
}

// Options tunes one replay run.
type Options struct {
	// Codec decodes inputs and encodes outputs (default: codec.Default).
	Codec codec.Codec
	// CheckpointEvery captures the module's abstract state every K
	// operations when > 0 and the module registers a snapshot, building
	// the state trajectory.
	CheckpointEvery int
	// Timeout bounds the run (default 30s) — a module body that blocks on
	// anything but its (exhausted) input is cut off rather than hanging
	// the gate.
	Timeout time.Duration
}

// Result is what one replay run produced.
type Result struct {
	// Instance is the replayed instance name.
	Instance string `json:"instance"`
	// Module is the module specification name.
	Module string `json:"module"`
	// Consumed counts input records the module actually read.
	Consumed int `json:"consumed"`
	// Window counts input records offered.
	Window int `json:"window"`
	// Outputs is the module's send sequence, in order.
	Outputs []replay.Output `json:"outputs"`
	// States is the abstract-state trajectory: the encoded checkpoint
	// after every CheckpointEvery operations (empty when the module
	// registers no snapshot).
	States [][]byte `json:"states,omitempty"`
	// Err is a non-clean termination of the module body, if any (running
	// out of recorded input is clean).
	Err string `json:"err,omitempty"`
}

// Run replays a recorded window against a module body. The window is
// filtered to the records destined for instance; the body is driven
// through a fresh mh.Runtime on a virtual port until it exits or the
// input is exhausted (a read past the window terminates the body the same
// way deletion from the bus would).
func Run(instance string, window []replay.Record, mod Module, opts Options) (*Result, error) {
	if mod.Body == nil {
		return nil, fmt.Errorf("rerun: module %s has no body", mod.Name)
	}
	if opts.Codec == nil {
		opts.Codec = codec.Default()
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	vp := newVirtualPort(instance, replay.InputsTo(window, instance))
	res := &Result{Instance: instance, Module: mod.Name, Window: vp.total}

	mhOpts := []mh.Option{
		mh.WithSleepUnit(0), // virtual clock: sleeps complete immediately
		mh.WithCodec(opts.Codec),
		mh.WithLogWriter(io.Discard),
	}
	var stateMu sync.Mutex
	if opts.CheckpointEvery > 0 {
		mhOpts = append(mhOpts, mh.WithCheckpoint(opts.CheckpointEvery,
			func(_ string, encoded []byte) {
				stateMu.Lock()
				res.States = append(res.States, append([]byte(nil), encoded...))
				stateMu.Unlock()
			}))
	}
	rt := mh.New(vp, mhOpts...)

	done := make(chan struct{})
	go func() { //archlint:spawn replay sandbox body; joined via done below
		defer close(done)
		term := mh.Run(func() { mod.Body(rt) })
		if term != nil && !exhaustedTermination(term) {
			res.Err = term.Reason
		}
	}()
	select {
	case <-done:
	case <-time.After(opts.Timeout):
		vp.close() // wake blocked reads; the body unwinds via ErrStopped
		<-done
		res.Err = "replay timeout: " + opts.Timeout.String()
	}
	if res.Err == "" {
		if err := rt.Err(); err != nil && !errors.Is(err, bus.ErrStopped) {
			res.Err = err.Error()
		}
	}
	vp.mu.Lock()
	res.Consumed = vp.consumed
	res.Outputs = vp.outputs
	vp.mu.Unlock()
	return res, nil
}

// exhaustedTermination reports whether a module termination was the
// expected end-of-window unwind (a read or sleep past the exhausted
// input surfaces as the stopped-instance error).
func exhaustedTermination(t *mh.Termination) bool {
	return t != nil && strings.Contains(t.Reason, bus.ErrStopped.Error())
}

// virtualPort is the replay sandbox's stand-in for a bus attachment: per-
// interface input queues preloaded from the recorded window, outputs
// captured in send order, no signals, no state install. It implements
// bus.TracedWriter so the runtime's causal carry-through works unchanged
// (the parent context is simply dropped — the sandbox has no tracer).
type virtualPort struct {
	name  string
	total int

	mu       sync.Mutex
	queues   map[string][]replay.Record
	consumed int
	outputs  []replay.Output
	closed   bool
}

func newVirtualPort(name string, window []replay.Record) *virtualPort {
	vp := &virtualPort{name: name, queues: map[string][]replay.Record{}}
	for _, r := range window {
		ifc := endpointIface(r.To)
		vp.queues[ifc] = append(vp.queues[ifc], r)
		vp.total++
	}
	return vp
}

// endpointIface returns the interface part of "instance.interface".
func endpointIface(ep string) string {
	for i := len(ep) - 1; i >= 0; i-- {
		if ep[i] == '.' {
			return ep[i+1:]
		}
	}
	return ""
}

func (vp *virtualPort) Name() string    { return vp.name }
func (vp *virtualPort) Machine() string { return "replay" }
func (vp *virtualPort) Status() string  { return bus.StatusAdd }

func (vp *virtualPort) Write(iface string, data []byte) error {
	return vp.WriteTraced(iface, data, bus.TraceContext{})
}

// WriteTraced captures one output (bus.TracedWriter capability).
func (vp *virtualPort) WriteTraced(iface string, data []byte, _ bus.TraceContext) error {
	vp.mu.Lock()
	defer vp.mu.Unlock()
	if vp.closed {
		return bus.ErrStopped
	}
	vp.outputs = append(vp.outputs, replay.Output{Iface: iface, Data: append([]byte(nil), data...)})
	return nil
}

// SendBatch captures a batch of outputs in emission order: a batched send
// replays identically to the equivalent sequence of Writes, so batching
// never changes a module's canonical output sequence.
func (vp *virtualPort) SendBatch(iface string, batch [][]byte) error {
	return vp.WriteBatchTraced(iface, batch, bus.TraceContext{})
}

// WriteBatchTraced implements bus.BatchTracedWriter for the sandbox.
func (vp *virtualPort) WriteBatchTraced(iface string, batch [][]byte, _ bus.TraceContext) error {
	vp.mu.Lock()
	defer vp.mu.Unlock()
	if vp.closed {
		return bus.ErrStopped
	}
	for _, data := range batch {
		vp.outputs = append(vp.outputs, replay.Output{Iface: iface, Data: append([]byte(nil), data...)})
	}
	return nil
}

// Read pops the next recorded input on iface. An exhausted queue reports
// the stopped-instance error, terminating the body exactly as deletion
// from the bus would — that is the end of the window.
func (vp *virtualPort) Read(iface string) (bus.Message, error) {
	vp.mu.Lock()
	defer vp.mu.Unlock()
	q := vp.queues[iface]
	if len(q) == 0 || vp.closed {
		return bus.Message{}, bus.ErrStopped
	}
	r := q[0]
	vp.queues[iface] = q[1:]
	vp.consumed++
	return recordMessage(r), nil
}

func (vp *virtualPort) TryRead(iface string) (bus.Message, bool, error) {
	vp.mu.Lock()
	defer vp.mu.Unlock()
	q := vp.queues[iface]
	if len(q) == 0 || vp.closed {
		if vp.closed {
			return bus.Message{}, false, bus.ErrStopped
		}
		return bus.Message{}, false, nil
	}
	r := q[0]
	vp.queues[iface] = q[1:]
	vp.consumed++
	return recordMessage(r), true, nil
}

func (vp *virtualPort) Pending(iface string) (int, error) {
	vp.mu.Lock()
	defer vp.mu.Unlock()
	return len(vp.queues[iface]), nil
}

func (vp *virtualPort) TakeSignal() (bus.Signal, bool) { return bus.Signal{}, false }

func (vp *virtualPort) Divulge([]byte) error { return nil }

func (vp *virtualPort) AwaitState(time.Duration) ([]byte, error) {
	return nil, errors.New("rerun: replay sandbox installs no state")
}

// Done reports input exhaustion so a module sleeping between reads exits
// at the window boundary instead of spinning forever (an empty window is
// exhausted from the start).
func (vp *virtualPort) Done() bool {
	vp.mu.Lock()
	defer vp.mu.Unlock()
	return vp.closed || vp.consumed == vp.total
}

func (vp *virtualPort) close() {
	vp.mu.Lock()
	vp.closed = true
	vp.mu.Unlock()
}

func recordMessage(r replay.Record) bus.Message {
	data := append([]byte(nil), r.Data...)
	from := r.From
	inst, ifc := from, ""
	for i := len(from) - 1; i >= 0; i-- {
		if from[i] == '.' {
			inst, ifc = from[:i], from[i+1:]
			break
		}
	}
	return bus.Message{
		From:  bus.Endpoint{Instance: inst, Interface: ifc},
		Data:  data,
		Trace: r.Trace,
	}
}

var _ bus.Port = (*virtualPort)(nil)
var _ bus.TracedWriter = (*virtualPort)(nil)
var _ bus.BatchTracedWriter = (*virtualPort)(nil)
