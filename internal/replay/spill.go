package replay

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
)

// The spill file is a single gob stream: one spillHeader frame followed by
// one frame per Record, in global-sequence order (appends are serialized
// by the log's spill mutex). Gob's self-describing encoding gives the
// format the same forward/backward latitude as the TCP wire frames: new
// fields decode as zero values against old readers, absent fields are
// skipped — pinned by the golden-bytes tests next to the TCP ones.

// spillMagic identifies a record spill stream; spillVersion is bumped only
// for changes gob cannot absorb.
const (
	spillMagic   = "mh-record"
	spillVersion = 1
)

// spillHeader is the stream's first frame.
type spillHeader struct {
	Magic   string
	Version int
}

// spillWriter frames records onto one writer.
type spillWriter struct {
	enc *gob.Encoder
}

func newSpillWriter(w io.Writer) (*spillWriter, error) {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(spillHeader{Magic: spillMagic, Version: spillVersion}); err != nil {
		return nil, fmt.Errorf("replay: spill header: %w", err)
	}
	return &spillWriter{enc: enc}, nil
}

func (s *spillWriter) write(r *Record) error {
	return s.enc.Encode(r)
}

// SetSpill starts spilling every subsequent append to w as gob frames,
// writing the stream header immediately. Pass nil to stop spilling. The
// log does not close w.
func (l *Log) SetSpill(w io.Writer) error {
	if l == nil {
		return errors.New("replay: SetSpill on nil log")
	}
	l.spillMu.Lock()
	defer l.spillMu.Unlock()
	if w == nil {
		l.spill = nil
		return nil
	}
	sw, err := newSpillWriter(w)
	if err != nil {
		return err
	}
	l.spill, l.spillErr = sw, nil
	return nil
}

// SpillErr returns the sticky first spill-write error, if any.
func (l *Log) SpillErr() error {
	if l == nil {
		return nil
	}
	l.spillMu.Lock()
	defer l.spillMu.Unlock()
	return l.spillErr
}

// ReadLog decodes a spill stream back into records, in recorded order.
func ReadLog(r io.Reader) ([]Record, error) {
	dec := gob.NewDecoder(r)
	var hdr spillHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("replay: spill header: %w", err)
	}
	if hdr.Magic != spillMagic {
		return nil, fmt.Errorf("replay: not a record spill (magic %q)", hdr.Magic)
	}
	if hdr.Version > spillVersion {
		return nil, fmt.Errorf("replay: spill version %d newer than reader (%d)", hdr.Version, spillVersion)
	}
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, fmt.Errorf("replay: spill frame %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// ReadLogFile decodes a spill file.
func ReadLogFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLog(f)
}
