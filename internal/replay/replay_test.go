package replay

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/telemetry/trace"
)

func TestNewLogCapacity(t *testing.T) {
	if got := NewLog(0).Cap(); got != 4096 {
		t.Errorf("default capacity = %d, want 4096", got)
	}
	if got := NewLog(5).Cap(); got != 16 {
		t.Errorf("minimum capacity = %d, want 16", got)
	}
	if got := NewLog(100).Cap(); got != 100 {
		t.Errorf("capacity = %d, want 100", got)
	}
}

func TestNilLogIsNoOp(t *testing.T) {
	var l *Log
	l.Enable()
	l.Disable()
	if l.Enabled() || l.Cap() != 0 || l.Recorded() != 0 || l.Len() != 0 || l.MemoryBound() != 0 {
		t.Error("nil log reports activity")
	}
	if l.Snapshot() != nil || l.QueueSeqs() != nil {
		t.Error("nil log returns records")
	}
	q := l.Queue("a", "b")
	if q != nil {
		t.Fatal("nil log returned a non-nil queue handle")
	}
	q.Append("x", "y", []byte("data"), trace.Context{}, 1) // must not panic
}

func TestAppendDisabledRecordsNothing(t *testing.T) {
	l := NewLog(16)
	q := l.Queue("dst", "in")
	q.Append("src", "out", []byte("dropped"), trace.Context{}, 1)
	if l.Recorded() != 0 || l.Len() != 0 {
		t.Error("disabled log recorded")
	}
	l.Enable()
	q.Append("src", "out", []byte("kept"), trace.Context{}, 1)
	if l.Recorded() != 1 {
		t.Errorf("recorded = %d, want 1", l.Recorded())
	}
	l.Disable()
	q.Append("src", "out", []byte("dropped again"), trace.Context{}, 1)
	if l.Recorded() != 1 {
		t.Error("disabled log kept recording")
	}
	// The already-recorded window stays readable after disable.
	recs := l.Snapshot()
	if len(recs) != 1 || string(recs[0].Data) != "kept" {
		t.Errorf("snapshot after disable = %+v", recs)
	}
}

func TestRingEvictionAndSequences(t *testing.T) {
	l := NewLog(16)
	l.Enable()
	q := l.Queue("dst", "in")
	for i := 1; i <= 40; i++ {
		q.Append("src", "out", []byte(fmt.Sprintf("m%02d", i)), trace.Context{}, 7)
	}
	if l.Recorded() != 40 {
		t.Errorf("recorded = %d, want 40", l.Recorded())
	}
	if l.Len() != 16 {
		t.Errorf("retained = %d, want 16", l.Len())
	}
	recs := l.Snapshot()
	if len(recs) != 16 {
		t.Fatalf("snapshot size = %d, want 16", len(recs))
	}
	// The ring keeps the 16 most recent, in order, with gapless parallel
	// Seq and QSeq (single queue: the two sequences agree).
	for i, r := range recs {
		wantSeq := uint64(25 + i)
		if r.Seq != wantSeq || r.QSeq != wantSeq {
			t.Errorf("record %d: seq=%d qseq=%d, want %d", i, r.Seq, r.QSeq, wantSeq)
		}
		if want := fmt.Sprintf("m%02d", wantSeq); string(r.Data) != want {
			t.Errorf("record %d: data=%q, want %q", i, r.Data, want)
		}
		if r.Epoch != 7 || r.From != "src.out" || r.To != "dst.in" {
			t.Errorf("record %d: %+v", i, r)
		}
	}
	seqs := l.QueueSeqs()
	want := []QueueSeq{{Endpoint: "dst.in", Seq: 40}}
	if !reflect.DeepEqual(seqs, want) {
		t.Errorf("queue seqs = %+v, want %+v", seqs, want)
	}
}

func TestQueueHandleInterning(t *testing.T) {
	l := NewLog(16)
	l.Enable()
	q1 := l.Queue("dst", "in")
	q1.Append("src", "out", []byte("a"), trace.Context{}, 1)
	// A re-registered instance (clone reusing the name after rollback)
	// resolves the same handle and continues the same delivery sequence.
	q2 := l.Queue("dst", "in")
	if q1 != q2 {
		t.Fatal("re-resolved queue handle is a different object")
	}
	q2.Append("src", "out", []byte("b"), trace.Context{}, 1)
	recs := l.Snapshot()
	if len(recs) != 2 || recs[0].QSeq != 1 || recs[1].QSeq != 2 {
		t.Errorf("qseqs = %+v", recs)
	}
}

func TestMemoryBoundTracksPayloads(t *testing.T) {
	l := NewLog(16)
	l.Enable()
	empty := l.MemoryBound()
	q := l.Queue("dst", "in")
	big := make([]byte, 1024)
	for i := 0; i < 16; i++ {
		q.Append("src", "out", big, trace.Context{}, 1)
	}
	if got := l.MemoryBound(); got != empty+16*1024 {
		t.Errorf("memory bound with 16 KiB retained = %d, want %d", got, empty+16*1024)
	}
	// Overwriting with small payloads releases the large ones.
	for i := 0; i < 16; i++ {
		q.Append("src", "out", []byte{1}, trace.Context{}, 1)
	}
	if got := l.MemoryBound(); got != empty+16 {
		t.Errorf("memory bound after eviction = %d, want %d", got, empty+16)
	}
}

func TestAppendCopiesPayload(t *testing.T) {
	l := NewLog(16)
	l.Enable()
	q := l.Queue("dst", "in")
	buf := []byte("original")
	q.Append("src", "out", buf, trace.Context{}, 1)
	copy(buf, "CLOBBER!")
	if got := string(l.Snapshot()[0].Data); got != "original" {
		t.Errorf("record shares the caller's buffer: %q", got)
	}
}

func TestSpillRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog(16)
	if err := l.SetSpill(&buf); err != nil {
		t.Fatal(err)
	}
	l.Enable()
	q := l.Queue("compute", "sensor")
	tc := trace.Context{TraceID: 42, SpanID: 7, Parent: 3, Hops: 2, Flags: 1, SentNs: 99}
	q.Append("sensor", "out", []byte("one"), tc, 5)
	q.Append("sensor", "out", nil, trace.Context{}, 5)
	if err := l.SpillErr(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The spill sees every record — including ones the ring would evict —
	// and round-trips all fields byte-identically.
	want := l.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].QSeq != want[i].QSeq ||
			got[i].Epoch != want[i].Epoch || got[i].From != want[i].From ||
			got[i].To != want[i].To || got[i].Trace != want[i].Trace ||
			!bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("record %d: decoded %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSpillOutlivesRingEviction(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog(16)
	if err := l.SetSpill(&buf); err != nil {
		t.Fatal(err)
	}
	l.Enable()
	q := l.Queue("dst", "in")
	for i := 0; i < 50; i++ {
		q.Append("src", "out", []byte{byte(i)}, trace.Context{}, 1)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("spill has %d records, want all 50 (ring retains %d)", len(got), l.Len())
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || r.Data[0] != byte(i) {
			t.Errorf("spill record %d = %+v", i, r)
		}
	}
}

func TestReadLogRejectsForeignStreams(t *testing.T) {
	if _, err := ReadLog(strings.NewReader("not gob at all")); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	l := NewLog(16)
	if err := l.SetSpill(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the magic in place ("mh-record" appears once in the header
	// frame).
	bad := bytes.Replace(raw, []byte(spillMagic), []byte("mh-RECORD"), 1)
	if _, err := ReadLog(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: %v", err)
	}
}

// goldenSpillStream is the spill encoding of two records — one traced, one
// not — captured from the current encoder. It pins the on-disk format: a
// future encoder change that silently breaks old spill files fails here.
const goldenSpillStream = "2e7f0301010b7370696c6c48656164657201ff8000010201054d61676963010c00010756657273696f6e010400000010ff8001096d682d7265636f726401020053ff81030101065265636f726401ff820001070103536571010600010451536571010600010545706f6368010600010446726f6d010c000102546f010c000105547261636501ff8400010444617461010a00000055ff8303010107436f6e7465787401ff8400010601075472616365494401060001065370616e49440106000106506172656e740106000104486f70730106000105466c616773010600010653656e744e7301040000003dff82010101010103010a73656e736f722e6f7574010e636f6d707574652e73656e736f72010109010401020101010101fff60001077061796c6f6164002bff82010201020103010a73656e736f722e6f7574010e636f6d707574652e73656e736f7201000102010200"

func TestSpillGoldenBytes(t *testing.T) {
	raw, err := hex.DecodeString(goldenSpillStream)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden spill stream no longer decodes: %v", err)
	}
	want := []Record{
		{Seq: 1, QSeq: 1, Epoch: 3, From: "sensor.out", To: "compute.sensor",
			Trace: trace.Context{TraceID: 9, SpanID: 4, Parent: 2, Hops: 1, Flags: 1, SentNs: 123},
			Data:  []byte("payload")},
		{Seq: 2, QSeq: 2, Epoch: 3, From: "sensor.out", To: "compute.sensor",
			Data: []byte{0x01, 0x02}},
	}
	if !reflect.DeepEqual(recs, want) {
		t.Errorf("golden spill decoded as %+v, want %+v", recs, want)
	}

	// The current encoder still produces the golden bytes for the same
	// append sequence — the format is deterministic, not just readable.
	var buf bytes.Buffer
	l := NewLog(16)
	if err := l.SetSpill(&buf); err != nil {
		t.Fatal(err)
	}
	l.Enable()
	q := l.Queue("compute", "sensor")
	q.Append("sensor", "out", []byte("payload"), want[0].Trace, 3)
	q.Append("sensor", "out", []byte{0x01, 0x02}, trace.Context{}, 3)
	if got := hex.EncodeToString(buf.Bytes()); got != goldenSpillStream {
		t.Errorf("encoder output changed:\n got %s\nwant %s", got, goldenSpillStream)
	}
}

func TestCanonicalRendering(t *testing.T) {
	recs := []Record{
		// Deliberately out of order and carrying run-varying fields (trace,
		// epoch, global seq) that must not leak into the canonical form.
		{Seq: 9, QSeq: 2, Epoch: 4, From: "a.out", To: "z.in", Data: []byte{0xBB},
			Trace: trace.Context{TraceID: 77, SpanID: 5, SentNs: 12345}},
		{Seq: 1, QSeq: 1, Epoch: 2, From: "a.out", To: "z.in", Data: []byte{0xAA}},
		{Seq: 5, QSeq: 1, Epoch: 3, From: "b.out", To: "c.in", Data: []byte("hi")},
	}
	want := "queue c.in (1)\n" +
		"  1 b.out 6869\n" +
		"queue z.in (2)\n" +
		"  1 a.out aa\n" +
		"  2 a.out bb\n"
	if got := Canonical(recs); got != want {
		t.Errorf("canonical =\n%s\nwant\n%s", got, want)
	}
	// Same window, different run-varying fields and slice order: identical
	// rendering — the property the determinism gate relies on.
	perm := []Record{
		{Seq: 3, QSeq: 1, Epoch: 9, From: "b.out", To: "c.in", Data: []byte("hi"),
			Trace: trace.Context{TraceID: 1, SpanID: 1}},
		{Seq: 7, QSeq: 2, Epoch: 9, From: "a.out", To: "z.in", Data: []byte{0xBB}},
		{Seq: 2, QSeq: 1, Epoch: 8, From: "a.out", To: "z.in", Data: []byte{0xAA}},
	}
	if got := Canonical(perm); got != want {
		t.Errorf("canonical is sensitive to run-varying fields:\n%s", got)
	}
}

func TestInputsTo(t *testing.T) {
	recs := []Record{
		{Seq: 3, To: "compute.sensor", From: "sensor.out"},
		{Seq: 1, To: "compute.display", From: "display.temper"},
		{Seq: 2, To: "display.temper", From: "compute.display"},
		{Seq: 4, To: "compute2.display", From: "display.temper"},
	}
	got := InputsTo(recs, "compute")
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 3 {
		t.Errorf("inputs = %+v", got)
	}
	if InputsTo(recs, "nobody") != nil {
		t.Error("unknown instance has inputs")
	}
}

func TestOutputsOfSpanDedup(t *testing.T) {
	// One traced send fanning out to two queues (same span), then a second
	// send: two outputs.
	recs := []Record{
		{Seq: 1, From: "f.out", To: "a.in", Data: []byte("x"), Trace: trace.Context{TraceID: 1, SpanID: 10}},
		{Seq: 2, From: "f.out", To: "b.in", Data: []byte("x"), Trace: trace.Context{TraceID: 1, SpanID: 10}},
		{Seq: 3, From: "f.out", To: "a.in", Data: []byte("y"), Trace: trace.Context{TraceID: 1, SpanID: 11}},
	}
	got := OutputsOf(recs, "f")
	want := []Output{{Iface: "out", Data: []byte("x")}, {Iface: "out", Data: []byte("y")}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("outputs = %+v, want %+v", got, want)
	}

	// Untraced bus: consecutive identical records collapse, identical but
	// separated records do not.
	recs = []Record{
		{Seq: 1, From: "f.out", To: "a.in", Data: []byte("x")},
		{Seq: 2, From: "f.out", To: "b.in", Data: []byte("x")},
		{Seq: 3, From: "f.out", To: "a.in", Data: []byte("y")},
		{Seq: 4, From: "f.out", To: "a.in", Data: []byte("x")},
	}
	got = OutputsOf(recs, "f")
	want = []Output{
		{Iface: "out", Data: []byte("x")},
		{Iface: "out", Data: []byte("y")},
		{Iface: "out", Data: []byte("x")},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("untraced outputs = %+v, want %+v", got, want)
	}
}

func TestDiffOutputs(t *testing.T) {
	a := Output{Iface: "out", Data: []byte("a")}
	b := Output{Iface: "out", Data: []byte("b")}
	c := Output{Iface: "ctl", Data: []byte("a")}
	cases := []struct {
		name      string
		want, got []Output
		kind      string
		index     int
	}{
		{"match", []Output{a, b}, []Output{a, b}, "", 0},
		{"empty", nil, nil, "", 0},
		{"payload", []Output{a}, []Output{b}, "payload", 0},
		{"iface", []Output{a}, []Output{c}, "iface", 0},
		{"missing", []Output{a, b}, []Output{a}, "missing", 1},
		{"extra", []Output{a}, []Output{a, b}, "extra", 1},
	}
	for _, tc := range cases {
		d := DiffOutputs(tc.want, tc.got)
		if tc.kind == "" {
			if d != nil {
				t.Errorf("%s: unexpected divergence %v", tc.name, d)
			}
			continue
		}
		if d == nil || d.Kind != tc.kind || d.Index != tc.index {
			t.Errorf("%s: divergence = %+v, want kind=%s index=%d", tc.name, d, tc.kind, tc.index)
		}
		if d.String() == "" {
			t.Errorf("%s: empty rendering", tc.name)
		}
	}
	if (*Divergence)(nil).String() != "outputs match" {
		t.Error("nil divergence rendering")
	}
}

func TestConcurrentAppendSnapshot(t *testing.T) {
	l := NewLog(64)
	l.Enable()
	done := make(chan struct{})
	go func() { //archlint:spawn test writer; joined via done below
		defer close(done)
		q := l.Queue("dst", "in")
		for i := 0; i < 500; i++ {
			q.Append("src", "out", []byte{byte(i)}, trace.Context{}, 1)
		}
	}()
	for i := 0; i < 50; i++ {
		for _, r := range l.Snapshot() {
			if r.Seq == 0 || len(r.Data) != 1 {
				t.Fatalf("torn record %+v", r)
			}
		}
		l.QueueSeqs()
		l.MemoryBound()
	}
	<-done
	if l.Recorded() != 500 {
		t.Errorf("recorded = %d, want 500", l.Recorded())
	}
}
