// Package replay implements the deterministic record half of the
// record/replay subsystem: a bounded in-memory ring of every message the
// bus delivers while recording is enabled, with an optional gob-framed
// file spill. Each record carries the sending and receiving endpoints, the
// routing epoch the delivery was resolved under, the causal trace context
// stamped by the bus, the payload bytes exactly as encoded by the module's
// codec, and two sequence numbers: a per-destination-queue sequence (QSeq,
// assigned under the destination queue's lock, so it is the queue's total
// delivery order) and a global ring sequence (Seq, assigned by one atomic
// increment).
//
// Ordering guarantees. Per-queue total order is exact: appends for one
// QueueLog happen under that queue's mutex, in push order. Cross-queue
// order is causally consistent: a module reads its input (recorded at
// delivery i) before it writes the downstream message (recorded at
// delivery j), so i's global Seq precedes j's, and the trace context
// (trace/span/parent/hops, PR 5) ties the two records to one causal chain.
// What is NOT deterministic across runs is the global interleaving of
// unrelated queues and the trace identifiers and timestamps themselves —
// Canonical excludes them, which is why two recordings of the same seeded
// run render identically.
package replay

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/telemetry/trace"
)

// Record is one delivered message.
type Record struct {
	// Seq is the log's global sequence, assigned at append; snapshots sort
	// by it, oldest first. It is causally consistent: a record that
	// happened-before another (same queue, or linked by a trace hop) has
	// the smaller Seq.
	Seq uint64 `json:"seq"`
	// QSeq is the destination queue's own delivery sequence, gapless and
	// monotonic per To endpoint for the lifetime of the log.
	QSeq uint64 `json:"qseq"`
	// Epoch is the version of the routing snapshot the delivery was
	// resolved under (the slow path records the version it re-resolved
	// against while holding the writer lock).
	Epoch uint64 `json:"epoch"`
	// From and To are "instance.interface" endpoints.
	From string `json:"from"`
	To   string `json:"to"`
	// Trace is the causal context the bus stamped on the message.
	Trace trace.Context `json:"trace"`
	// Data is a private copy of the payload bytes as encoded by the
	// sender's codec.
	Data []byte `json:"data"`
}

// endpointInstance returns the instance part of an "instance.interface"
// endpoint.
func endpointInstance(ep string) string {
	if i := strings.LastIndexByte(ep, '.'); i >= 0 {
		return ep[:i]
	}
	return ep
}

// endpointIface returns the interface part of an "instance.interface"
// endpoint.
func endpointIface(ep string) string {
	if i := strings.LastIndexByte(ep, '.'); i >= 0 {
		return ep[i+1:]
	}
	return ""
}

// Log is the record ring: a fixed-size lock-free ring of the most recent
// deliveries, modeled on the trace flight recorder. Appending pays one
// atomic increment and one atomic pointer swap; readers snapshot without
// blocking writers. Recording starts disabled — the bus hook checks one
// atomic bool and the disabled path allocates nothing.
type Log struct {
	slots  []atomic.Pointer[Record]
	cursor atomic.Uint64
	on     atomic.Bool

	// retained tracks payload bytes currently held by ring slots, so
	// MemoryBound reflects actual payload retention (payload size is not
	// bounded by the slot count alone).
	retained atomic.Int64

	// queues interns one QueueLog per destination endpoint so a queue's
	// delivery sequence survives instance re-registration (a clone reusing
	// a name after rollback continues the same sequence).
	qmu    sync.Mutex
	queues map[string]*QueueLog

	// spill, when set, receives every record as a gob frame, serialized by
	// spillMu. The first write error sticks and stops further spilling.
	spillMu  sync.Mutex
	spill    *spillWriter
	spillErr error
}

// NewLog returns a log retaining the capacity most recent deliveries
// (minimum 16, default 4096 when capacity <= 0). Recording starts
// disabled; call Enable.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 4096
	}
	if capacity < 16 {
		capacity = 16
	}
	return &Log{
		slots:  make([]atomic.Pointer[Record], capacity),
		queues: map[string]*QueueLog{},
	}
}

// Enable turns recording on (nil-safe no-op).
func (l *Log) Enable() {
	if l != nil {
		l.on.Store(true)
	}
}

// Disable turns recording off (nil-safe no-op). Already-recorded entries
// stay readable.
func (l *Log) Disable() {
	if l != nil {
		l.on.Store(false)
	}
}

// Enabled reports whether recording is on (false on nil).
func (l *Log) Enabled() bool { return l != nil && l.on.Load() }

// Cap returns the ring's fixed capacity (0 on nil).
func (l *Log) Cap() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// Recorded returns the total number of deliveries ever appended (0 on
// nil); it can exceed Cap once the ring wraps.
func (l *Log) Recorded() uint64 {
	if l == nil {
		return 0
	}
	return l.cursor.Load()
}

// Len returns the number of records currently retained (0 on nil).
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	n := l.cursor.Load()
	if n > uint64(len(l.slots)) {
		return len(l.slots)
	}
	return int(n)
}

// MemoryBound returns the ring's current retained memory in bytes: the
// slot array, one Record per occupied slot, and the payload bytes those
// records hold. Unlike the trace recorder the payloads dominate, so the
// bound is tracked live rather than derived from the capacity.
func (l *Log) MemoryBound() int {
	if l == nil {
		return 0
	}
	per := int(unsafe.Sizeof(Record{})) + int(unsafe.Sizeof(atomic.Pointer[Record]{}))
	return len(l.slots)*per + int(l.retained.Load())
}

// Queue interns and returns the append handle for one destination
// endpoint. Nil-safe: a nil log returns a nil handle, whose Append is a
// no-op — the same nil-receiver discipline as the telemetry counters, so
// the bus resolves handles unconditionally at AddInstance.
func (l *Log) Queue(instance, iface string) *QueueLog {
	if l == nil {
		return nil
	}
	ep := instance + "." + iface
	l.qmu.Lock()
	defer l.qmu.Unlock()
	q, ok := l.queues[ep]
	if !ok {
		q = &QueueLog{log: l, to: ep}
		l.queues[ep] = q
	}
	return q
}

// Snapshot returns the retained records sorted by global sequence, oldest
// first (nil on nil or empty).
func (l *Log) Snapshot() []Record {
	if l == nil {
		return nil
	}
	out := make([]Record, 0, len(l.slots))
	for i := range l.slots {
		if r := l.slots[i].Load(); r != nil {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// QueueSeqs returns the per-destination delivery sequence high-water
// marks, sorted by endpoint.
func (l *Log) QueueSeqs() []QueueSeq {
	if l == nil {
		return nil
	}
	l.qmu.Lock()
	out := make([]QueueSeq, 0, len(l.queues))
	for ep, q := range l.queues {
		out = append(out, QueueSeq{Endpoint: ep, Seq: q.seq.Load()})
	}
	l.qmu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// QueueSeq is one destination queue's delivery high-water mark.
type QueueSeq struct {
	Endpoint string `json:"endpoint"`
	Seq      uint64 `json:"seq"`
}

// append assigns the global sequence, publishes the record to the ring and
// spills it. Called with a fully-built record the caller will not reuse.
func (l *Log) append(r *Record) {
	seq := l.cursor.Add(1)
	r.Seq = seq
	old := l.slots[(seq-1)%uint64(len(l.slots))].Swap(r)
	delta := int64(len(r.Data))
	if old != nil {
		delta -= int64(len(old.Data))
	}
	l.retained.Add(delta)
	l.spillMu.Lock()
	if l.spill != nil && l.spillErr == nil {
		l.spillErr = l.spill.write(r)
	}
	l.spillMu.Unlock()
}

// QueueLog is the per-destination-queue append handle the bus resolves at
// AddInstance and invokes under the destination queue's mutex — that lock
// is what makes QSeq the queue's true delivery order. A nil handle is a
// no-op; a disabled log costs one atomic load.
type QueueLog struct {
	log *Log
	to  string
	seq atomic.Uint64
}

// Append records one delivery to this queue. data is copied; the caller's
// buffer is never retained. Must be called with the destination queue's
// lock held (the bus queueing layer is the only legal caller — archlint
// AL012 pins it there).
func (q *QueueLog) Append(fromInst, fromIface string, data []byte, tc trace.Context, epoch uint64) {
	if q == nil || !q.log.on.Load() {
		return
	}
	q.log.append(&Record{
		QSeq:  q.seq.Add(1),
		Epoch: epoch,
		From:  fromInst + "." + fromIface,
		To:    q.to,
		Trace: tc,
		Data:  append([]byte(nil), data...),
	})
}
