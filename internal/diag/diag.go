// Package diag is the shared diagnostics vocabulary of the repository's
// static analyzers: a Diagnostic with a stable code, a severity and a source
// position, collected into a Report that renders deterministically as
// compiler-style text or stable JSON.
//
// Two analyzers build on it: internal/analyze (the reconfiguration-safety
// analyzer behind cmd/mhlint, codes MHxxx) and internal/archlint (the
// architectural-invariant analyzer behind cmd/archlint, codes ALxxx). Both
// emit the same wire and text forms, so tooling that consumes one consumes
// the other.
package diag

import (
	"encoding/json"
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Severity classifies a diagnostic.
type Severity int

// Severities. Errors make the analyzed artifact unsafe to use; warnings
// flag waste or risks that do not compromise soundness.
const (
	SevWarning Severity = iota + 1
	SevError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Code     string         `json:"code"`
	Severity Severity       `json:"severity"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the compiler-style text form.
func (d Diagnostic) String() string {
	if d.Pos.Filename != "" || d.Pos.IsValid() {
		return fmt.Sprintf("%s: %s[%s]: %s", d.Pos, d.Severity, d.Code, d.Message)
	}
	return fmt.Sprintf("%s[%s]: %s", d.Severity, d.Code, d.Message)
}

// diagJSON is the stable wire form of a Diagnostic.
type diagJSON struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
}

// Report collects the diagnostics of one analyzer run.
type Report struct {
	Diags []Diagnostic
}

// Add appends a diagnostic.
func (r *Report) Add(code string, sev Severity, pos token.Position, format string, args ...any) {
	r.Diags = append(r.Diags, Diagnostic{
		Code:     code,
		Severity: sev,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Sort orders diagnostics by file, line, column, then code, making both
// renderings deterministic.
func (r *Report) Sort() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// HasErrors reports whether any diagnostic is an error.
func (r *Report) HasErrors() bool {
	for _, d := range r.Diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Counts returns the number of errors and warnings.
func (r *Report) Counts() (errors, warnings int) {
	for _, d := range r.Diags {
		if d.Severity == SevError {
			errors++
		} else {
			warnings++
		}
	}
	return errors, warnings
}

// ByCode returns the diagnostics carrying the given code.
func (r *Report) ByCode(code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

// Text renders the report as one line per diagnostic plus a summary line.
func (r *Report) Text() string {
	var b strings.Builder
	for _, d := range r.Diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	errs, warns := r.Counts()
	if len(r.Diags) == 0 {
		b.WriteString("ok: no diagnostics\n")
	} else {
		fmt.Fprintf(&b, "%d error(s), %d warning(s)\n", errs, warns)
	}
	return b.String()
}

// JSON renders the report in the stable machine-readable form.
func (r *Report) JSON() string {
	errs, warns := r.Counts()
	out := struct {
		Diagnostics []diagJSON `json:"diagnostics"`
		Errors      int        `json:"errors"`
		Warnings    int        `json:"warnings"`
	}{Diagnostics: []diagJSON{}, Errors: errs, Warnings: warns}
	for _, d := range r.Diags {
		out.Diagnostics = append(out.Diagnostics, diagJSON{
			Code:     d.Code,
			Severity: d.Severity,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		// The structure contains only marshalable fields; this is
		// unreachable but kept explicit.
		return fmt.Sprintf(`{"error": %q}`, err.Error())
	}
	return string(data) + "\n"
}
