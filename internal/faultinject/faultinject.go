// Package faultinject is a deterministic fault-injection facility for the
// reconfiguration substrate. Control-plane operations in internal/bus and
// internal/reconfig consult a Set of named failpoints before acting; a test
// (or an operator, via the FAULTPOINTS environment variable) arms a site
// with an action — inject an error, drop the operation, or delay it — and
// the operation misbehaves exactly there, exactly as many times as asked.
//
// Determinism is the point: the transaction tests kill a Replace at every
// site and assert the rollback converges, so a failpoint must fire on
// demand, not probabilistically.
//
// Sites are plain strings. The sites wired into the runtime are listed in
// Sites; firing an unknown site is not an error (it simply never triggers),
// and Enable stays permissive so tests can arm ad-hoc sites. Parse, the
// operator-facing entry point behind FAULTPOINTS, is strict: a site that is
// neither in Sites nor under a registered prefix in SitePrefixes is rejected,
// so a typo fails fast instead of silently never arming.
package faultinject

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Action selects what an armed failpoint does.
type Action int

// Failpoint actions.
const (
	// Error makes the operation fail with the point's error.
	Error Action = iota + 1
	// Drop makes the operation silently not happen: the caller observes
	// success but the effect (a delivered signal, a sent frame) is lost.
	// Sites that cannot meaningfully drop treat Drop as Error.
	Drop
	// Delay stalls the operation for the point's Delay, then lets it
	// proceed.
	Delay
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Error:
		return "error"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Sentinel results of Fire.
var (
	// ErrInjected is wrapped by every injected error, so callers and
	// tests can identify synthetic failures with errors.Is.
	ErrInjected = errors.New("faultinject: injected fault")
	// ErrDropped is returned by Fire for Drop points. Call sites that
	// support dropping treat it as "report success, skip the effect";
	// the rest propagate it like any injected error.
	ErrDropped = fmt.Errorf("%w: dropped", ErrInjected)
)

// Point arms one failpoint.
type Point struct {
	// Action is what happens when the site fires (default Error).
	Action Action
	// Err overrides the injected error (default an ErrInjected wrapper
	// naming the site).
	Err error
	// Delay is the stall duration for Delay points.
	Delay time.Duration
	// Count limits how many times the point fires before disarming
	// itself; 0 means every time.
	Count int
}

// Set is a collection of armed failpoints. The zero value and nil are valid
// empty sets — Fire on them is a cheap no-op — so production paths carry a
// *Set unconditionally. A Set is safe for concurrent use.
type Set struct {
	mu     sync.Mutex
	points map[string]*armed
	fired  map[string]int
}

type armed struct {
	p    Point
	left int // remaining firings; <0 = unlimited
}

// New returns an empty set.
func New() *Set {
	return &Set{points: map[string]*armed{}, fired: map[string]int{}}
}

// Enable arms (or re-arms) a failpoint at site.
func (s *Set) Enable(site string, p Point) {
	if p.Action == 0 {
		p.Action = Error
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.points == nil {
		s.points = map[string]*armed{}
		s.fired = map[string]int{}
	}
	left := -1
	if p.Count > 0 {
		left = p.Count
	}
	s.points[site] = &armed{p: p, left: left}
}

// Disable disarms the failpoint at site.
func (s *Set) Disable(site string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.points, site)
}

// Fired reports how many times the site has fired.
func (s *Set) Fired(site string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired[site]
}

// Fire consults the set at a site. It returns nil when the site is unarmed
// (the overwhelmingly common case). For an Error point it returns the
// injected error; for a Drop point it returns ErrDropped; for a Delay point
// it sleeps, then returns nil.
func (s *Set) Fire(site string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if len(s.points) == 0 {
		s.mu.Unlock()
		return nil
	}
	a, ok := s.points[site]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	if a.left == 0 {
		s.mu.Unlock()
		return nil
	}
	if a.left > 0 {
		a.left--
	}
	s.fired[site]++
	p := a.p
	s.mu.Unlock()

	switch p.Action {
	case Delay:
		time.Sleep(p.Delay)
		return nil
	case Drop:
		return ErrDropped
	default:
		if p.Err != nil {
			return fmt.Errorf("%w: %s: %w", ErrInjected, site, p.Err)
		}
		return fmt.Errorf("%w at %s", ErrInjected, site)
	}
}

// Armed lists the currently armed sites, sorted.
func (s *Set) Armed() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.points))
	for site, a := range s.points {
		if a.left != 0 {
			out = append(out, site)
		}
	}
	sort.Strings(out)
	return out
}

// EnvVar is the environment variable Parse and Default read.
const EnvVar = "FAULTPOINTS"

// Parse builds a Set from a specification string:
//
//	site=action[:arg][:xN][,site=action...]
//
// where action is error, drop, or delay (delay takes a Go duration as arg:
// "bus.rebind=delay:50ms"), and xN caps the firing count
// ("bus.signal=drop:x2"). Examples:
//
//	FAULTPOINTS="reconfig.launch=error"
//	FAULTPOINTS="bus.awaitdivulged=error:x1,tcp.dial=delay:100ms"
//
// Parse rejects site names that are not wired into the runtime — not in
// Sites and not under any SitePrefixes prefix — so a typo in FAULTPOINTS
// fails fast instead of arming a point that can never fire.
func Parse(spec string) (*Set, error) {
	s := New()
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, rest, ok := strings.Cut(entry, "=")
		if !ok || site == "" {
			return nil, fmt.Errorf("faultinject: malformed entry %q (want site=action)", entry)
		}
		var p Point
		for i, part := range strings.Split(rest, ":") {
			switch {
			case i == 0:
				switch part {
				case "error":
					p.Action = Error
				case "drop":
					p.Action = Drop
				case "delay":
					p.Action = Delay
				default:
					return nil, fmt.Errorf("faultinject: unknown action %q in %q", part, entry)
				}
			case strings.HasPrefix(part, "x"):
				n, err := strconv.Atoi(part[1:])
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("faultinject: bad count %q in %q", part, entry)
				}
				p.Count = n
			default:
				d, err := time.ParseDuration(part)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad argument %q in %q", part, entry)
				}
				p.Delay = d
			}
		}
		if p.Action == Delay && p.Delay == 0 {
			return nil, fmt.Errorf("faultinject: delay without duration in %q", entry)
		}
		if !KnownSite(site) {
			return nil, fmt.Errorf("faultinject: unknown site %q in %q (known sites: %s; prefixes: %s)",
				site, entry, strings.Join(Sites, ", "), strings.Join(SitePrefixes, ", "))
		}
		s.Enable(site, p)
	}
	return s, nil
}

var (
	defaultOnce sync.Once
	defaultSet  *Set
)

// Default returns the process-wide set parsed once from FAULTPOINTS. A
// malformed specification is reported on stderr and yields an empty set —
// fault injection must never take down a production process on its own.
func Default() *Set {
	defaultOnce.Do(func() {
		s, err := Parse(os.Getenv(EnvVar))
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultinject:", err)
			s = New()
		}
		defaultSet = s
	})
	return defaultSet
}

// KnownSite reports whether site is wired into the runtime: an exact match
// in Sites, or a non-empty suffix under one of SitePrefixes.
func KnownSite(site string) bool {
	for _, s := range Sites {
		if site == s {
			return true
		}
	}
	for _, p := range SitePrefixes {
		if strings.HasPrefix(site, p) && len(site) > len(p) {
			return true
		}
	}
	return false
}

// SitePrefixes lists families of per-instance sites: the runtime fires
// "<prefix><instance>" so a fault can target one replica by name (e.g.
// "replica.crash.worker.2=error:x1" kills that replica's next loop
// iteration). Parse accepts any site under a prefix.
var SitePrefixes = []string{
	"replica.crash.", // a replicated module's crash point, fired at loop top
}

// Sites wired into the runtime, for reference and for the operator docs.
// (The list is informational for Enable; Parse validates against it.)
var Sites = []string{
	"bus.addinstance",    // registering an instance (add_obj)
	"bus.attach",         // claiming an instance's runtime slot / launch
	"bus.signal",         // control-signal delivery (drop = lost signal)
	"bus.divulge",        // a module surrendering captured state
	"bus.awaitdivulged",  // the coordinator's wait for divulged state
	"bus.installstate",   // state installation into a clone
	"bus.rebind",         // the atomic rebinding batch
	"bus.deleteinstance", // instance removal (post-commit)
	"bus.awaitrestored",  // the coordinator's wait for restore confirmation
	"reconfig.launch",    // the launcher starting a clone
	"tcp.dial",           // remote attachment dial
	"tcp.call",           // remote attachment RPC round-trip
}
