package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestFireUnarmedAndNil(t *testing.T) {
	var nilSet *Set
	if err := nilSet.Fire("anything"); err != nil {
		t.Errorf("nil set fired: %v", err)
	}
	if nilSet.Fired("anything") != 0 {
		t.Error("nil set counted a firing")
	}
	nilSet.Disable("anything") // must not panic

	s := New()
	if err := s.Fire("unarmed"); err != nil {
		t.Errorf("unarmed site fired: %v", err)
	}
	var zero Set
	if err := zero.Fire("unarmed"); err != nil {
		t.Errorf("zero-value set fired: %v", err)
	}
	zero.Enable("s", Point{})
	if err := zero.Fire("s"); err == nil {
		t.Error("zero-value set did not fire after Enable")
	}
}

func TestFireError(t *testing.T) {
	s := New()
	s.Enable("site", Point{})
	err := s.Fire("site")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	custom := errors.New("custom boom")
	s.Enable("site", Point{Err: custom})
	err = s.Fire("site")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, custom) {
		t.Errorf("custom err = %v", err)
	}
}

func TestFireDropAndDelay(t *testing.T) {
	s := New()
	s.Enable("sig", Point{Action: Drop})
	if err := s.Fire("sig"); !errors.Is(err, ErrDropped) {
		t.Errorf("drop = %v", err)
	}
	s.Enable("slow", Point{Action: Delay, Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := s.Fire("slow"); err != nil {
		t.Errorf("delay returned %v", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("delay did not stall")
	}
}

func TestCountLimitsFirings(t *testing.T) {
	s := New()
	s.Enable("site", Point{Count: 2})
	if err := s.Fire("site"); err == nil {
		t.Error("firing 1 passed")
	}
	if err := s.Fire("site"); err == nil {
		t.Error("firing 2 passed")
	}
	if err := s.Fire("site"); err != nil {
		t.Errorf("firing 3 should be disarmed: %v", err)
	}
	if got := s.Fired("site"); got != 2 {
		t.Errorf("fired = %d, want 2", got)
	}
	if got := s.Armed(); len(got) != 0 {
		t.Errorf("exhausted point still armed: %v", got)
	}
}

func TestDisableAndArmed(t *testing.T) {
	s := New()
	s.Enable("b", Point{})
	s.Enable("a", Point{})
	if got := s.Armed(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("armed = %v", got)
	}
	s.Disable("a")
	if err := s.Fire("a"); err != nil {
		t.Errorf("disabled site fired: %v", err)
	}
	if err := s.Fire("b"); err == nil {
		t.Error("site b unarmed")
	}
}

func TestParse(t *testing.T) {
	s, err := Parse("a=error, b=drop:x2 ,c=delay:5ms,d=error:x1")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Armed(); len(got) != 4 {
		t.Fatalf("armed = %v", got)
	}
	if err := s.Fire("a"); !errors.Is(err, ErrInjected) {
		t.Errorf("a = %v", err)
	}
	if err := s.Fire("b"); !errors.Is(err, ErrDropped) {
		t.Errorf("b = %v", err)
	}
	if err := s.Fire("c"); err != nil {
		t.Errorf("c = %v", err)
	}
	s.Fire("d")
	if err := s.Fire("d"); err != nil {
		t.Errorf("d should be exhausted after x1: %v", err)
	}

	if s, err := Parse(""); err != nil || len(s.Armed()) != 0 {
		t.Errorf("empty spec: %v %v", s, err)
	}
	for _, bad := range []string{
		"noequals",
		"=error",
		"a=frobnicate",
		"a=delay",        // no duration
		"a=delay:bogus",  // bad duration
		"a=error:x0",     // bad count
		"a=error:xhello", // bad count
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestDefaultIsEmptyWithoutEnv(t *testing.T) {
	// The test process does not set FAULTPOINTS; Default must be a
	// usable empty set.
	if s := Default(); len(s.Armed()) != 0 {
		t.Errorf("default set armed: %v", s.Armed())
	}
}
