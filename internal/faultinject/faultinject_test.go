package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestFireUnarmedAndNil(t *testing.T) {
	var nilSet *Set
	if err := nilSet.Fire("anything"); err != nil {
		t.Errorf("nil set fired: %v", err)
	}
	if nilSet.Fired("anything") != 0 {
		t.Error("nil set counted a firing")
	}
	nilSet.Disable("anything") // must not panic

	s := New()
	if err := s.Fire("unarmed"); err != nil {
		t.Errorf("unarmed site fired: %v", err)
	}
	var zero Set
	if err := zero.Fire("unarmed"); err != nil {
		t.Errorf("zero-value set fired: %v", err)
	}
	zero.Enable("s", Point{})
	if err := zero.Fire("s"); err == nil {
		t.Error("zero-value set did not fire after Enable")
	}
}

func TestFireError(t *testing.T) {
	s := New()
	s.Enable("site", Point{})
	err := s.Fire("site")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	custom := errors.New("custom boom")
	s.Enable("site", Point{Err: custom})
	err = s.Fire("site")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, custom) {
		t.Errorf("custom err = %v", err)
	}
}

func TestFireDropAndDelay(t *testing.T) {
	s := New()
	s.Enable("sig", Point{Action: Drop})
	if err := s.Fire("sig"); !errors.Is(err, ErrDropped) {
		t.Errorf("drop = %v", err)
	}
	s.Enable("slow", Point{Action: Delay, Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := s.Fire("slow"); err != nil {
		t.Errorf("delay returned %v", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("delay did not stall")
	}
}

func TestCountLimitsFirings(t *testing.T) {
	s := New()
	s.Enable("site", Point{Count: 2})
	if err := s.Fire("site"); err == nil {
		t.Error("firing 1 passed")
	}
	if err := s.Fire("site"); err == nil {
		t.Error("firing 2 passed")
	}
	if err := s.Fire("site"); err != nil {
		t.Errorf("firing 3 should be disarmed: %v", err)
	}
	if got := s.Fired("site"); got != 2 {
		t.Errorf("fired = %d, want 2", got)
	}
	if got := s.Armed(); len(got) != 0 {
		t.Errorf("exhausted point still armed: %v", got)
	}
}

func TestDisableAndArmed(t *testing.T) {
	s := New()
	s.Enable("b", Point{})
	s.Enable("a", Point{})
	if got := s.Armed(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("armed = %v", got)
	}
	s.Disable("a")
	if err := s.Fire("a"); err != nil {
		t.Errorf("disabled site fired: %v", err)
	}
	if err := s.Fire("b"); err == nil {
		t.Error("site b unarmed")
	}
}

func TestParse(t *testing.T) {
	s, err := Parse("reconfig.launch=error, bus.signal=drop:x2 ,tcp.dial=delay:5ms,bus.divulge=error:x1")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Armed(); len(got) != 4 {
		t.Fatalf("armed = %v", got)
	}
	if err := s.Fire("reconfig.launch"); !errors.Is(err, ErrInjected) {
		t.Errorf("reconfig.launch = %v", err)
	}
	if err := s.Fire("bus.signal"); !errors.Is(err, ErrDropped) {
		t.Errorf("bus.signal = %v", err)
	}
	if err := s.Fire("tcp.dial"); err != nil {
		t.Errorf("tcp.dial = %v", err)
	}
	s.Fire("bus.divulge")
	if err := s.Fire("bus.divulge"); err != nil {
		t.Errorf("bus.divulge should be exhausted after x1: %v", err)
	}

	if s, err := Parse(""); err != nil || len(s.Armed()) != 0 {
		t.Errorf("empty spec: %v %v", s, err)
	}
}

func TestParseRejectsMalformedAndUnknown(t *testing.T) {
	tests := []struct {
		spec string
		why  string
	}{
		{"noequals", "missing ="},
		{"=error", "empty site"},
		{"bus.signal=frobnicate", "unknown action"},
		{"bus.signal=delay", "delay without duration"},
		{"bus.signal=delay:bogus", "bad duration"},
		{"bus.signal=error:x0", "zero count"},
		{"bus.signal=error:xhello", "non-numeric count"},
		{"bus.sginal=error", "typoed site"},
		{"nosuchsite=error", "unknown site"},
		{"launch=error", "bare suffix of a known site"},
		{"replica.crash.=error", "prefix with empty instance"},
		{"bus.signal=drop,nosuchsite=error", "unknown site later in list"},
	}
	for _, tc := range tests {
		if _, err := Parse(tc.spec); err == nil {
			t.Errorf("Parse(%q) accepted (%s)", tc.spec, tc.why)
		}
	}
}

func TestParseAcceptsPrefixSites(t *testing.T) {
	s, err := Parse("replica.crash.worker.2=error:x1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Fire("replica.crash.worker.2"); !errors.Is(err, ErrInjected) {
		t.Errorf("prefix site did not fire: %v", err)
	}
	if !KnownSite("replica.crash.w") || KnownSite("replica.crash.") || KnownSite("replica.crash") {
		t.Error("KnownSite prefix matching is off")
	}
}

func TestDefaultIsEmptyWithoutEnv(t *testing.T) {
	// The test process does not set FAULTPOINTS; Default must be a
	// usable empty set.
	if s := Default(); len(s.Armed()) != 0 {
		t.Errorf("default set armed: %v", s.Armed())
	}
}
