// Package reconf is the public API of the reproduction of Hofmeister &
// Purtilo, "Dynamic Reconfiguration in Distributed Systems: Adapting
// Software Modules for Replacement" (ICDCS 1993).
//
// It assembles the subsystems under internal/ into the platform the paper
// describes:
//
//   - a configuration specification (Figure 2) is parsed and materialized
//     as module instances and bindings on a software bus (POLYLITH);
//   - module programs written in the module language (a Go subset, see
//     internal/interp's LANG.md) are automatically prepared for
//     reconfiguration participation (Section 3) when their specification
//     declares reconfiguration points;
//   - prepared modules run as single-threaded, bus-attached instances on
//     logical machines;
//   - the reconfiguration scripts (Figure 5) — Replace, Move, Update,
//     Replicate — operate on the running application, capturing and
//     restoring activation-record stacks mid-call.
//
// Quickstart:
//
//	app, _ := reconf.Load(reconf.Config{
//	    SpecText: specText,
//	    Sources:  map[string]reconf.ModuleSource{"compute": {Files: files}},
//	    Native:   map[string]reconf.NativeModule{"sensor": sensorFn},
//	})
//	app.Start()
//	app.Move("compute", "compute2", "machineB")
package reconf

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bus"
	"repro/internal/codec"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/mh"
	"repro/internal/mil"
	"repro/internal/reconfig"
	"repro/internal/replay"
	"repro/internal/telemetry"
	"repro/internal/telemetry/evlog"
	"repro/internal/telemetry/health"
	"repro/internal/telemetry/timeseries"
	"repro/internal/telemetry/trace"
	"repro/internal/transform"
)

// ModuleSource holds the module-language source files of one module.
type ModuleSource struct {
	Files map[string]string
}

// NativeModule is a module implemented directly in Go against the
// participation runtime (used for substrate modules like sensors and
// displays, and by tests). It runs on its own goroutine; returning ends the
// instance.
type NativeModule func(rt *mh.Runtime)

// Config describes an application to load.
type Config struct {
	// SpecText is the configuration specification (Figure 2 dialect).
	SpecText string
	// Application names the application block (default: the sole one).
	Application string
	// Sources maps module names to module-language programs.
	Sources map[string]ModuleSource
	// Native maps module names to Go implementations. A module must have
	// exactly one of a source or a native implementation.
	Native map[string]NativeModule
	// Mode selects capture-set derivation for prepared modules. The
	// default is CaptureSpec when the specification lists state variables
	// and CaptureAll otherwise — exactly the paper's convention.
	Mode transform.CaptureMode
	// SleepUnit compresses module time (default 1ms per mh.Sleep tick).
	SleepUnit time.Duration
	// Codec overrides the wire/state codec (default portable).
	Codec codec.Codec
	// StateTimeout bounds how long a reconfiguration waits for a module
	// to reach a reconfiguration point (default 30s). It predates
	// Timeouts and, when set, overrides Timeouts.StateMove.
	StateTimeout time.Duration
	// Timeouts bounds every wait of the reconfiguration layer — state
	// move, restore confirmation, rollback compensations, quiescence.
	// Zero fields take reconfig.DefaultTimeouts (30s each); individual
	// scripts can still override per call via ReplaceOptions.
	Timeouts reconfig.Timeouts
	// TraceSample enables causal-trace recording: every TraceSample-th
	// trace minted by the bus is sampled into the flight recorder (1 = all).
	// 0 (the default) keeps stamping on but records nothing — the zero-
	// allocation steady state.
	TraceSample int
	// TraceBuffer is the flight recorder's capacity in spans (default 4096;
	// meaningful only with TraceSample > 0).
	TraceBuffer int
	// CheckpointInterval is how many communication operations a replicated
	// member performs between abstract-state checkpoints (default 16).
	// Smaller intervals shorten recovery replay at a higher steady-state
	// cost — the tradeoff the paper's Discussion weighs.
	CheckpointInterval int
	// SupervisorPoll is the replica supervisor's detection period
	// (default 50ms).
	SupervisorPoll time.Duration
	// StallAfter is how long a replica's operation counter may sit still
	// with input queued before the supervisor declares it wedged
	// (default 3x SupervisorPoll).
	StallAfter time.Duration
	// RecordBuffer enables the record/replay subsystem: every delivered
	// message is appended to a bounded ring of this capacity (recording
	// starts on; toggle via the /record obs endpoint or the control
	// plane). 0 leaves recording unconfigured — the zero-cost default.
	RecordBuffer int
	// RecordSpill optionally streams every record to a writer as gob
	// frames (cmd/mhreplay reads the stream back). Meaningful only with
	// RecordBuffer > 0; the writer is not closed by the App.
	RecordSpill io.Writer
	// PreflightReplay arms the replay gate on every replacement: between
	// the clone's restore confirmation and commit, the recorded input
	// window of the old instance is replayed against both the old and the
	// candidate module in-process, and the transaction aborts through the
	// journaled rollback if their output sequences diverge. Requires
	// RecordBuffer > 0.
	PreflightReplay bool
	// TimeseriesWindow is the windowed-telemetry rollup period (default
	// 1s): the background roller samples every registry atomic once per
	// window, off every message path.
	TimeseriesWindow time.Duration
	// TimeseriesWindows is the rollup ring depth in windows (default 120,
	// i.e. two minutes of 1s history).
	TimeseriesWindows int
	// EventBuffer is the structured event log's ring capacity in events
	// (default 1024).
	EventBuffer int
	// Health parameterizes the per-instance verdict thresholds; zero
	// fields take the burn-rate defaults (see health.Config).
	Health health.Config
}

// Mode aliases, so callers need not import internal packages.
const (
	CaptureAll  = transform.CaptureAll
	CaptureLive = transform.CaptureLive
	CaptureSpec = transform.CaptureSpec
)

// PreparedModule is a module ready to run: either an instrumented (or
// plain) program, or a native implementation.
type PreparedModule struct {
	Name   string
	Spec   *mil.Module
	Prog   *lang.Program
	Info   *lang.Info
	Output *transform.Output // nil for unprepared/native modules
	Native NativeModule
}

// Instrumented reports whether the module carries participation code.
func (m *PreparedModule) Instrumented() bool { return m.Output != nil }

type runningInstance struct {
	name string
	rt   *mh.Runtime
	done chan error
}

// App is a loaded (and possibly running) application.
type App struct {
	Spec        *mil.Spec
	Application *mil.Application

	bus      *bus.Bus
	prims    *reconfig.Primitives
	cfg      Config
	recorder *replay.Log
	roller   *timeseries.Roller
	events   *evlog.Log
	checker  *health.Checker

	mu        sync.Mutex
	modules   map[string]*PreparedModule
	instances map[string]*runningInstance
	instMod   map[string]string // instance -> module name

	// sups holds one self-healing supervisor per replicated MIL instance,
	// keyed by group (= MIL instance) name; started in Start, stopped in
	// Stop.
	sups map[string]*reconfig.Supervisor
}

// Load parses and validates the specification, prepares every module that
// declares reconfiguration points, and materializes instances and bindings
// on a fresh bus. Modules are not started until Start (or Launch).
func Load(cfg Config) (*App, error) {
	if cfg.SleepUnit == 0 {
		cfg.SleepUnit = time.Millisecond
	}
	if cfg.Codec == nil {
		cfg.Codec = codec.Default()
	}
	cfg.Timeouts = cfg.Timeouts.WithDefaults()
	if cfg.StateTimeout == 0 {
		cfg.StateTimeout = cfg.Timeouts.StateMove
	} else {
		cfg.Timeouts.StateMove = cfg.StateTimeout
	}
	spec, err := mil.ParseAndValidate(cfg.SpecText)
	if err != nil {
		return nil, err
	}
	appSpec := spec.Application(cfg.Application)
	if appSpec == nil {
		return nil, fmt.Errorf("reconf: no application %q in specification", cfg.Application)
	}

	msgTracer := trace.NewTracer(0, nil)
	if cfg.TraceSample > 0 {
		msgTracer = trace.NewTracer(cfg.TraceSample, trace.NewRecorder(cfg.TraceBuffer))
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 16
	}
	if cfg.SupervisorPoll <= 0 {
		cfg.SupervisorPoll = 50 * time.Millisecond
	}
	if cfg.PreflightReplay && cfg.RecordBuffer <= 0 {
		return nil, fmt.Errorf("reconf: PreflightReplay requires RecordBuffer > 0")
	}
	var recorder *replay.Log
	if cfg.RecordBuffer > 0 {
		recorder = replay.NewLog(cfg.RecordBuffer)
		if cfg.RecordSpill != nil {
			if err := recorder.SetSpill(cfg.RecordSpill); err != nil {
				return nil, err
			}
		}
		recorder.Enable()
	}
	a := &App{
		Spec:        spec,
		Application: appSpec,
		bus:         bus.New(bus.WithMsgTracer(msgTracer), bus.WithRecorder(recorder)),
		cfg:         cfg,
		recorder:    recorder,
		modules:     map[string]*PreparedModule{},
		instances:   map[string]*runningInstance{},
		instMod:     map[string]string{},
		sups:        map[string]*reconfig.Supervisor{},
	}
	a.prims = reconfig.NewPrimitives(a.bus)

	// Observability layer: windowed rollups over the registry atomics, the
	// structured event log, and the verdict checker reading both. The bus's
	// topology events feed the log through its async observer mailboxes, so
	// no message or edit path blocks on the log.
	a.roller = timeseries.New(a.bus.Telemetry(), timeseries.Config{
		Window:  cfg.TimeseriesWindow,
		Windows: cfg.TimeseriesWindows,
	})
	a.events = evlog.NewLog(cfg.EventBuffer)
	a.checker = health.NewChecker(a.roller, cfg.Health)
	a.bus.Observe(a.bridgeBusEvent)

	for _, m := range spec.Modules {
		pm, err := a.prepareModule(m)
		if err != nil {
			return nil, err
		}
		a.modules[m.Name] = pm
	}

	// Materialize instances and bindings. A `replicas N` instance becomes a
	// replica group carrying the MIL instance's name — bindings that name it
	// fan in to the members, named <name>.1 .. <name>.N — plus a supervisor
	// that heals member crashes (started in Start).
	for _, inst := range appSpec.Instances {
		m := spec.Module(inst.Module)
		machine := inst.Machine
		if machine == "" {
			machine = m.Machine
		}
		if machine == "" {
			machine = "machineA"
		}
		if inst.Replicated() {
			ifaces := InterfacesOf(m)
			if err := a.bus.AddGroup(inst.Name, inst.Policy, ifaces); err != nil {
				return nil, err
			}
			for i := 1; i <= inst.Replicas; i++ {
				member := fmt.Sprintf("%s.%d", inst.Name, i)
				if err := a.bus.AddInstance(bus.InstanceSpec{
					Name:       member,
					Module:     m.Name,
					Machine:    machine,
					Status:     bus.StatusAdd,
					Interfaces: ifaces,
					Attrs:      m.Attrs,
				}); err != nil {
					return nil, err
				}
				if err := a.bus.AddGroupMember(inst.Name, member); err != nil {
					return nil, err
				}
				a.instMod[member] = m.Name
			}
			sup, err := reconfig.NewSupervisor(a.prims, a, reconfig.SupervisorConfig{
				Group:        inst.Name,
				PollInterval: cfg.SupervisorPoll,
				StallAfter:   cfg.StallAfter,
				Timeouts:     cfg.Timeouts,
				Health:       a.checker,
				Events:       a.events,
			})
			if err != nil {
				return nil, err
			}
			a.sups[inst.Name] = sup
			continue
		}
		if err := a.bus.AddInstance(bus.InstanceSpec{
			Name:       inst.Name,
			Module:     m.Name,
			Machine:    machine,
			Status:     bus.StatusAdd,
			Interfaces: InterfacesOf(m),
			Attrs:      m.Attrs,
		}); err != nil {
			return nil, err
		}
		a.instMod[inst.Name] = m.Name
	}
	for _, b := range appSpec.Binds {
		from := bus.Endpoint{Instance: b.From.Instance, Interface: b.From.Interface}
		to := bus.Endpoint{Instance: b.To.Instance, Interface: b.To.Interface}
		if err := a.bus.AddBinding(from, to); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// InterfacesOf derives bus interface specs from a MIL module specification.
func InterfacesOf(m *mil.Module) []bus.IfaceSpec {
	out := make([]bus.IfaceSpec, 0, len(m.Interfaces))
	for _, ifc := range m.Interfaces {
		var dir bus.Direction
		switch ifc.Role {
		case mil.RoleClient, mil.RoleServer:
			dir = bus.InOut
		case mil.RoleDefine:
			dir = bus.Out
		case mil.RoleUse:
			dir = bus.In
		}
		out = append(out, bus.IfaceSpec{Name: ifc.Name, Dir: dir})
	}
	return out
}

func (a *App) prepareModule(m *mil.Module) (*PreparedModule, error) {
	pm := &PreparedModule{Name: m.Name, Spec: m}
	src, hasSrc := a.cfg.Sources[m.Name]
	native, hasNative := a.cfg.Native[m.Name]
	switch {
	case hasSrc && hasNative:
		return nil, fmt.Errorf("reconf: module %s has both source and native implementations", m.Name)
	case hasNative:
		if m.Reconfigurable() {
			return nil, fmt.Errorf("reconf: module %s declares reconfiguration points but is native; only source modules can be prepared automatically", m.Name)
		}
		pm.Native = native
		return pm, nil
	case !hasSrc:
		return nil, fmt.Errorf("reconf: module %s has no implementation", m.Name)
	}

	if !m.Reconfigurable() {
		prog, err := lang.ParseFiles(src.Files)
		if err != nil {
			return nil, fmt.Errorf("reconf: module %s: %w", m.Name, err)
		}
		info, err := lang.Check(prog)
		if err != nil {
			return nil, fmt.Errorf("reconf: module %s: %w", m.Name, err)
		}
		pm.Prog, pm.Info = prog, info
		return pm, nil
	}

	// Prepare for participation. The capture mode defaults to the paper's
	// convention: use the specification's state lists when present.
	opts := transform.Options{Mode: a.cfg.Mode, PointVars: map[string][]string{}}
	anyVars := false
	for _, pt := range m.ReconfigPoints {
		if len(pt.Vars) > 0 {
			opts.PointVars[pt.Label] = pt.Vars
			anyVars = true
		}
	}
	if opts.Mode == 0 {
		if anyVars {
			opts.Mode = transform.CaptureSpec
		} else {
			opts.Mode = transform.CaptureAll
		}
	}
	out, err := transform.Prepare(src.Files, opts)
	if err != nil {
		return nil, fmt.Errorf("reconf: prepare module %s: %w", m.Name, err)
	}
	// Every point declared in the specification must exist in the source
	// (the graph's reconfiguration edges carry the source labels).
	for _, pt := range m.ReconfigPoints {
		found := false
		for _, e := range out.Graph.Edges {
			if e.IsReconfig() && e.Point.Label == pt.Label {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("reconf: module %s: specification declares point %s but the source has no mh.ReconfigPoint(%q)", m.Name, pt.Label, pt.Label)
		}
	}
	pm.Prog, pm.Info = out.Prog, out.Info
	pm.Output = out
	return pm, nil
}

// Module returns the prepared module by name, or nil.
func (a *App) Module(name string) *PreparedModule {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.modules[name]
}

// Bus exposes the underlying software bus.
func (a *App) Bus() *bus.Bus { return a.bus }

// Telemetry exposes the application-wide metrics registry (bus interface
// counters, queue depths, per-module flag-check and state-transfer timings).
func (a *App) Telemetry() *telemetry.Registry { return a.bus.Telemetry() }

// Primitives exposes the reconfiguration primitive layer (and its trace).
func (a *App) Primitives() *reconfig.Primitives { return a.prims }

// MsgTracer exposes the bus's causal message tracer.
func (a *App) MsgTracer() *trace.Tracer { return a.bus.MsgTracer() }

// FlightRecorder exposes the causal-trace flight recorder (nil unless the
// application was loaded with Config.TraceSample > 0).
func (a *App) FlightRecorder() *trace.Recorder { return a.bus.MsgTracer().Recorder() }

// Timeseries exposes the windowed-telemetry roller (started with the app).
func (a *App) Timeseries() *timeseries.Roller { return a.roller }

// Events exposes the structured event log.
func (a *App) Events() *evlog.Log { return a.events }

// HealthChecker exposes the verdict checker over the app's windowed
// telemetry.
func (a *App) HealthChecker() *health.Checker { return a.checker }

// Health evaluates one instance's verdict. An empty baseline defaults to
// the instance's live replica-group peers, when it has any — the natural
// incumbents for a healed or canaried member.
func (a *App) Health(instance string, baseline []string) health.Verdict {
	if len(baseline) == 0 {
		if sup := a.supervisorFor(instance); sup != nil {
			for _, st := range sup.Status().Members {
				if st.Name != instance {
					baseline = append(baseline, st.Name)
				}
			}
		}
	}
	return a.checker.Check(instance, baseline)
}

// bridgeBusEvent forwards one bus topology event into the structured event
// log. It runs on the bus's per-observer drain goroutine, never on a
// message or edit path.
func (a *App) bridgeBusEvent(e bus.Event) {
	a.events.Append(evlog.Record{
		TimeNs:   e.Time.UnixNano(),
		Source:   "bus",
		Kind:     e.Kind.String(),
		Instance: e.Instance,
		Detail:   e.Detail,
		TraceIDs: e.TraceIDs,
	})
}

// Launch implements reconfig.Launcher: it starts the runtime of a
// registered instance.
func (a *App) Launch(instance string) error {
	a.mu.Lock()
	modName, ok := a.instMod[instance]
	if !ok {
		// A clone created by a script: resolve its module from the bus.
		info, err := a.bus.Info(instance)
		if err != nil {
			a.mu.Unlock()
			return fmt.Errorf("reconf: launch %s: %w", instance, err)
		}
		modName = info.Module
		a.instMod[instance] = modName
	}
	pm := a.modules[modName]
	a.mu.Unlock()
	if pm == nil {
		return fmt.Errorf("reconf: launch %s: unknown module %s", instance, modName)
	}

	port, err := a.bus.Attach(instance)
	if err != nil {
		return fmt.Errorf("reconf: launch %s: %w", instance, err)
	}
	opts := []mh.Option{
		mh.WithSleepUnit(a.cfg.SleepUnit),
		mh.WithCodec(a.cfg.Codec),
		mh.WithStateTimeout(a.cfg.StateTimeout),
		mh.WithTelemetry(a.bus.Telemetry()),
	}
	sup := a.supervisorFor(instance)
	if sup != nil {
		opts = append(opts, mh.WithCheckpoint(a.cfg.CheckpointInterval, sup.Checkpoint))
	}
	rt := mh.New(port, opts...)
	if sup != nil {
		sup.RegisterHeartbeat(instance, rt.Ops)
	}
	ri := &runningInstance{name: instance, rt: rt, done: make(chan error, 1)}
	a.mu.Lock()
	a.instances[instance] = ri
	a.mu.Unlock()

	if pm.Native != nil {
		go func() { //archlint:spawn native instance body; reports exit on ri.done
			mh.Run(func() { pm.Native(rt) })
			ri.done <- a.reportExit(sup, instance, a.finishInstance(rt, nil))
		}()
		return nil
	}
	in := interp.New(pm.Prog, pm.Info, rt)
	go func() { //archlint:spawn interpreted instance body; reports exit on ri.done
		_, err := in.Run()
		ri.done <- a.reportExit(sup, instance, a.finishInstance(rt, err))
	}()
	return nil
}

// supervisorFor resolves the supervisor responsible for an instance. Group
// members — the originals from Load and every healed generation — are named
// <group>.<n>, so membership is a name-prefix question.
func (a *App) supervisorFor(instance string) *reconfig.Supervisor {
	a.mu.Lock()
	defer a.mu.Unlock()
	for group, sup := range a.sups {
		if strings.HasPrefix(instance, group+".") {
			return sup
		}
	}
	return nil
}

// reportExit forwards a supervised member's exit to its supervisor. The
// supervisor ignores reports for instances no longer in the group (planned
// deletions, members already marked out), so every exit can be reported.
func (a *App) reportExit(sup *reconfig.Supervisor, instance string, err error) error {
	if sup != nil {
		sup.ReportExit(instance, err)
	}
	return err
}

// finishInstance folds a module body's exit into its instance status and —
// for a clone that died before confirming its restoration (an interpreter
// failure, a panic in module code) — reports the failure to the bus so the
// reconfiguration coordinator aborts promptly instead of timing out.
func (a *App) finishInstance(rt *mh.Runtime, runErr error) error {
	err := instanceErr(rt, runErr)
	ack := err
	if ack == nil {
		ack = rt.Err()
	}
	rt.ConfirmRestoreOutcome(ack)
	return err
}

// instanceErr folds the runtime's recorded error into an instance's exit
// status. Being stopped (deleted from the bus) is a clean exit; a restore
// mismatch or capture failure is not.
func instanceErr(rt *mh.Runtime, runErr error) error {
	if runErr != nil {
		return runErr
	}
	if err := rt.Err(); err != nil && !errors.Is(err, bus.ErrStopped) {
		return err
	}
	return nil
}

// Start launches every instance of the application — the members
// <name>.1 .. <name>.N for a replicated instance — and then arms the
// self-healing supervisors.
func (a *App) Start() error {
	for _, inst := range a.Application.Instances {
		if inst.Replicated() {
			for i := 1; i <= inst.Replicas; i++ {
				if err := a.Launch(fmt.Sprintf("%s.%d", inst.Name, i)); err != nil {
					return err
				}
			}
			continue
		}
		if err := a.Launch(inst.Name); err != nil {
			return err
		}
	}
	for _, sup := range a.sups {
		sup.Start()
	}
	a.roller.Start()
	return nil
}

// Wait blocks until the named instance's runtime exits, returning its
// error (nil for a clean exit or state divulgence).
func (a *App) Wait(instance string, timeout time.Duration) error {
	a.mu.Lock()
	ri := a.instances[instance]
	a.mu.Unlock()
	if ri == nil {
		return fmt.Errorf("reconf: instance %s was never launched", instance)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-ri.done:
		ri.done <- err // keep for later Waits
		return err
	case <-timer.C:
		return fmt.Errorf("reconf: wait for %s: %w", instance, bus.ErrTimeout)
	}
}

// Runtime returns the participation runtime of a launched instance (tests
// and benchmarks use it for flag-check counters).
func (a *App) Runtime(instance string) *mh.Runtime {
	a.mu.Lock()
	defer a.mu.Unlock()
	if ri := a.instances[instance]; ri != nil {
		return ri.rt
	}
	return nil
}

// AttachDriver attaches an external driver to an instance declared in the
// application (for examples and tests that drive an endpoint directly).
// The instance must not have been launched.
func (a *App) AttachDriver(instance string) (bus.Port, error) {
	return a.bus.Attach(instance)
}

// ---- reconfiguration scripts ----

// fillTimeouts merges the application's configured bounds into per-call
// options: fields a caller set win, everything else inherits the config.
func (a *App) fillTimeouts(opts reconfig.ReplaceOptions) reconfig.ReplaceOptions {
	t := &opts.Timeouts
	c := a.cfg.Timeouts
	if t.StateMove <= 0 {
		t.StateMove = c.StateMove
	}
	if t.RestoreAck <= 0 {
		t.RestoreAck = c.RestoreAck
	}
	if t.Rollback <= 0 {
		t.Rollback = c.Rollback
	}
	if t.Quiesce <= 0 {
		t.Quiesce = c.Quiesce
	}
	return opts
}

// Move relocates an instance to another machine (the Section 2 scenario).
func (a *App) Move(inst, newName, machine string) error {
	_, err := a.ReplaceTx(inst, reconfig.ReplaceOptions{NewName: newName, Machine: machine})
	return err
}

// Replace runs the Figure 5 replacement script.
func (a *App) Replace(inst string, opts reconfig.ReplaceOptions) error {
	_, err := a.ReplaceTx(inst, opts)
	return err
}

// ReplaceTx runs the replacement script as a transaction and returns its
// full result: the forward step trace, whether it committed, and — on
// abort — the compensations replayed to restore the old configuration.
func (a *App) ReplaceTx(inst string, opts reconfig.ReplaceOptions) (*reconfig.TxResult, error) {
	opts = a.fillTimeouts(opts)
	if opts.Preflight == nil && a.cfg.PreflightReplay {
		opts.Preflight = a.preflightReplay
	}
	if opts.HealthNote == nil {
		// Candidate vs the instance it replaces: both exist at the
		// health_check span, so the note captures the comparison the
		// operator would otherwise make by hand.
		opts.HealthNote = func(old, new string) string {
			return a.checker.Check(new, []string{old}).Summary()
		}
	}
	res, err := reconfig.ReplaceTx(a.prims, a, inst, opts)
	kind, detail := "replace_committed", inst+" -> "+opts.NewName
	if err != nil {
		kind = "replace_aborted"
		detail += ": " + err.Error()
	}
	rec := evlog.Record{Source: "tx", Kind: kind, Instance: inst, Detail: detail}
	if res != nil {
		rec.Detail = rec.Detail + " tx=" + res.TxID
	}
	a.events.Append(rec)
	return res, err
}

// PlanReplace returns the steps ReplaceTx would perform, without executing
// any of them (the dry-run behind reconfigctl -dry-run).
func (a *App) PlanReplace(inst string, opts reconfig.ReplaceOptions) ([]string, error) {
	return reconfig.PlanReplace(a.prims, inst, a.fillTimeouts(opts))
}

// Update swaps in a new module implementation, carrying state across.
func (a *App) Update(inst, newName, newModule string) error {
	_, err := a.ReplaceTx(inst, reconfig.ReplaceOptions{NewName: newName, Module: newModule})
	return err
}

// Replicate adds a stateless replica of an instance.
func (a *App) Replicate(inst, replicaName, machine string) error {
	return reconfig.Replicate(a.prims, a, inst, replicaName, machine)
}

// Remove deletes an instance.
func (a *App) Remove(inst string) error {
	return reconfig.Remove(a.prims, inst)
}

// Stop halts the supervisors (so planned teardown is not misread as a
// crash wave), deletes every live instance and waits for their runtimes to
// wind down.
func (a *App) Stop() {
	a.roller.Stop()
	for _, sup := range a.sups {
		sup.Stop()
	}
	for _, name := range a.bus.Instances() {
		_ = a.bus.DeleteInstance(name)
	}
	a.mu.Lock()
	instances := make([]*runningInstance, 0, len(a.instances))
	for _, ri := range a.instances {
		instances = append(instances, ri)
	}
	a.mu.Unlock()
	for _, ri := range instances {
		select {
		case err := <-ri.done:
			ri.done <- err
		case <-time.After(5 * time.Second):
		}
	}
	a.bus.Close()
}

// Topology renders the current instances and bindings, the Figure 1 view.
func (a *App) Topology() string {
	var lines []string
	for _, name := range a.bus.Instances() {
		info, err := a.bus.Info(name)
		if err != nil {
			continue
		}
		lines = append(lines, fmt.Sprintf("instance %s (module %s) on %s", name, info.Module, info.Machine))
	}
	binds := a.bus.Bindings()
	bstrs := make([]string, 0, len(binds))
	for _, b := range binds {
		bstrs = append(bstrs, fmt.Sprintf("bind %s <-> %s", b.A, b.B))
	}
	sort.Strings(bstrs)
	lines = append(lines, bstrs...)
	return strings.Join(lines, "\n")
}

// Supervisor returns the self-healing supervisor of a replicated instance
// (the MIL instance name doubles as the group name), or nil.
func (a *App) Supervisor(group string) *reconfig.Supervisor {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sups[group]
}

// ReplicaSets snapshots every supervised replica group — members with
// heartbeat and backlog, corpses awaiting rebuild, supervision counters —
// sorted by group name. Served over HTTP as /replicas and by the control
// plane's "replicas" op.
func (a *App) ReplicaSets() []reconfig.ReplicaSetStatus {
	a.mu.Lock()
	sups := make([]*reconfig.Supervisor, 0, len(a.sups))
	for _, sup := range a.sups {
		sups = append(sups, sup)
	}
	a.mu.Unlock()
	out := make([]reconfig.ReplicaSetStatus, 0, len(sups))
	for _, sup := range sups {
		out = append(out, sup.Status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// Trace returns the reconfiguration primitive audit trail.
func (a *App) Trace() []string { return a.prims.Trace() }

// TraceTx returns the rendered span timeline of one transactional
// reconfiguration, by transaction ID (TxResult.TxID / TxReport.TxID).
func (a *App) TraceTx(txid string) ([]string, error) {
	tr, ok := a.prims.Tracer().Get(txid)
	if !ok {
		known := a.prims.Tracer().IDs()
		return nil, fmt.Errorf("reconf: no trace for %q (retained: %s)", txid, strings.Join(known, ", "))
	}
	return tr.Timeline(), nil
}

// ErrNotPrepared reports operations needing participation on a module that
// was not prepared.
var ErrNotPrepared = errors.New("reconf: module not prepared for participation")
