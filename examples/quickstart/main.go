// Quickstart: load the paper's Monitor application, run it, and move the
// compute module to another machine while it is mid-computation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/fixtures"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	results := make(chan fixtures.DisplayRequest, 8)
	app, err := reconf.Load(reconf.Config{
		SpecText: fixtures.MonitorSpec,
		Sources: map[string]reconf.ModuleSource{
			// compute declares reconfiguration point R; Load prepares it
			// automatically (flatten -> weave capture/restore blocks).
			"compute": {Files: map[string]string{"compute.go": fixtures.ComputeSource}},
		},
		Native: map[string]reconf.NativeModule{
			"sensor":  fixtures.Sensor(fixtures.SensorConfig{Interval: 1}),
			"display": fixtures.Display(4, 6, 1, results),
		},
		SleepUnit:    time.Millisecond,
		StateTimeout: 10 * time.Second,
	})
	if err != nil {
		return err
	}
	fmt.Println("== initial configuration ==")
	fmt.Println(app.Topology())

	if err := app.Start(); err != nil {
		return err
	}
	defer app.Stop()

	r := <-results
	fmt.Println("\nfirst response:", r.Describe())

	fmt.Println("\n== moving compute to machineB (mid-computation) ==")
	start := time.Now()
	if err := app.Move("compute", "compute2", "machineB"); err != nil {
		return err
	}
	fmt.Printf("move completed in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("\n== configuration after the move ==")
	fmt.Println(app.Topology())

	fmt.Println("\nresponses across the migration:")
	for i := 0; i < 5; i++ {
		select {
		case r := <-results:
			fmt.Println(" ", r.Describe())
		case <-time.After(10 * time.Second):
			return fmt.Errorf("response %d never arrived", i)
		}
	}

	fmt.Println("\nreconfiguration primitives issued (Figure 5):")
	fmt.Println(reconf.FormatTrace(app.Trace()))
	return nil
}
