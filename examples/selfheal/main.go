// Selfheal: replicated module groups with crash-triggered self-healing.
//
// A `replicas 3` worker pool sits between a feeder and a collector. Mid-load
// one replica is crashed through a faultpoint; the supervisor marks it out
// of the routing group immediately (its fenced backlog drains to the
// survivors), then rebuilds it from the newest periodic abstract-state
// checkpoint under the same journaled transaction machinery as an
// operator-driven replacement. The pool returns to full strength with every
// message delivered exactly once.
//
//	go run ./examples/selfheal
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro"
	"repro/internal/codec"
	"repro/internal/faultinject"
	"repro/internal/mh"
	"repro/internal/state"
)

const spec = `
module feeder {
  source = "./feeder" ::
  define interface out pattern = {integer} ::
}

module worker {
  source = "./worker" ::
  use interface in pattern = {integer} ::
  define interface out pattern = {integer} ::
}

module collector {
  source = "./collector" ::
  use interface in pattern = {integer} ::
}

module app {
  instance worker as pool replicas 3 policy roundrobin
  instance feeder
  instance collector
  bind "feeder out" "pool in"
  bind "pool out" "collector in"
}
`

const messages = 200

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "selfheal:", err)
		os.Exit(1)
	}
}

func run() error {
	faults := faultinject.New()

	// The worker is a native module: it forwards each integer and keeps a
	// processed counter as its abstract state. The faultpoint at loop top is
	// its crash switch; a clone rebuilds the counter from the checkpoint.
	worker := func(rt *mh.Runtime) {
		rt.Init()
		var processed, loc int
		if rt.Status() == "clone" {
			rt.Decode()
			rt.Restore("main", "", &loc, &processed)
			rt.FinishRestore()
			fmt.Printf("  %s restored from checkpoint (processed=%d)\n", rt.Name(), processed)
		}
		rt.RegisterSnapshot(func() (*state.State, error) {
			st := state.New(rt.Name())
			st.PushFrame(state.Frame{Func: "main", Location: 1,
				Vars: []state.Var{{Name: "processed", Value: state.IntValue(int64(processed))}}})
			return st, nil
		})
		for {
			if faults.Fire("replica.crash."+rt.Name()) != nil {
				fmt.Printf("  %s crashed\n", rt.Name())
				return
			}
			if rt.QueryIfMsgs("in") {
				var n int
				rt.Read("in", &n)
				processed++
				rt.Write("out", n)
			} else {
				rt.Sleep(1)
			}
		}
	}

	app, err := reconf.Load(reconf.Config{
		SpecText: spec,
		Native: map[string]reconf.NativeModule{
			"worker":    worker,
			"feeder":    func(rt *mh.Runtime) {},
			"collector": func(rt *mh.Runtime) {},
		},
		SleepUnit:          time.Microsecond,
		CheckpointInterval: 8,
		SupervisorPoll:     2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer app.Stop()
	app.Bus().SetFaults(faults)

	for i := 1; i <= 3; i++ {
		if err := app.Launch(fmt.Sprintf("pool.%d", i)); err != nil {
			return err
		}
	}
	sup := app.Supervisor("pool")
	sup.Start()
	fmt.Println("worker pool: 3 replicas, policy roundrobin")

	feeder, err := app.AttachDriver("feeder")
	if err != nil {
		return err
	}
	coll, err := app.AttachDriver("collector")
	if err != nil {
		return err
	}
	c := codec.Default()

	received := make(chan int, messages)
	go func() { //archlint:spawn example collector drain; exits when the collector port closes or all ids arrive
		for i := 0; i < messages; i++ {
			m, err := coll.Read("in")
			if err != nil {
				return
			}
			v, err := c.DecodeValue(m.Data)
			if err != nil {
				return
			}
			received <- int(v.Int)
		}
	}()

	for i := 0; i < messages; i++ {
		if i == messages/3 {
			fmt.Println("killing pool.2 under load")
			faults.Enable("replica.crash.pool.2", faultinject.Point{Action: faultinject.Error, Count: 1})
		}
		data, err := c.EncodeValue(state.IntValue(int64(i)))
		if err != nil {
			return err
		}
		if err := feeder.Write("out", data); err != nil {
			return err
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Wait for the heal to commit, then for every message to arrive.
	deadline := time.Now().Add(10 * time.Second)
	for sup.Stats().Recovered == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("supervisor did not recover the killed replica (stats %+v)", sup.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	seen := map[int]bool{}
	timeout := time.NewTimer(10 * time.Second)
	defer timeout.Stop()
	for len(seen) < messages {
		select {
		case id := <-received:
			if seen[id] {
				return fmt.Errorf("message %d delivered twice", id)
			}
			seen[id] = true
		case <-timeout.C:
			return fmt.Errorf("lost %d of %d messages", messages-len(seen), messages)
		}
	}

	st := sup.Status()
	names := make([]string, 0, len(st.Members))
	for _, m := range st.Members {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	fmt.Printf("healed: members %v (detected %d, recovered %d)\n",
		names, st.Stats.Detected, st.Stats.Recovered)
	fmt.Printf("zero messages lost: %d/%d delivered exactly once\n", len(seen), messages)

	fmt.Println("\nselfheal transaction trace:")
	for _, line := range app.Trace() {
		fmt.Println(" ", line)
	}
	return nil
}
