// Hotswap: software maintenance by dynamic update.
//
// A v1 statistics module is replaced by a v2 implementation while the
// application runs. The v2 module has the same procedures and capture sets
// — so it can accept the v1 module's divulged state — but computes a
// calibrated result. The update happens mid-call: the running total built
// by v1 is inherited by v2.
//
//	go run ./examples/hotswap
package main

import (
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/mh"
)

const spec = `
module stats {
  source = "./stats" ::
  server interface query pattern = {^integer} returns {float} ::
  use interface feed pattern = {^float} ::
  reconfiguration point = {R} ::
}

module statsV2 {
  source = "./stats_v2" ::
  server interface query pattern = {^integer} returns {float} ::
  use interface feed pattern = {^float} ::
  reconfiguration point = {R} ::
}

module client {
  source = "./client" ::
  client interface ask pattern = {integer} accepts {-float} ::
}

module feeder {
  source = "./feeder" ::
  define interface out pattern = {float} ::
}

module app {
  instance stats on "machineA"
  instance client
  instance feeder
  bind "client ask" "stats query"
  bind "feeder out" "stats feed"
}
`

// statsV1 accumulates a running sum; each query answers the mean of the
// next n feed values.
const statsV1 = `package stats

func main() {
	var n int
	var mean float64
	mh.Init()
	for {
		if mh.QueryIfMsgs("query") {
			mh.Read("query", &n)
			observe(n, n, &mean)
			mh.Write("query", mean)
		}
		mh.Sleep(1)
	}
}

func observe(total int, n int, mp *float64) {
	var sample float64
	if n <= 0 {
		*mp = 0.0
		return
	}
	observe(total, n-1, mp)
	mh.ReconfigPoint("R")
	mh.Read("feed", &sample)
	*mp = *mp + sample/float64(total)
}
`

// statsV2 is shape-identical (same procedures, parameters and locals, so
// the v1 abstract state restores into it) but reports a calibrated mean.
const statsV2 = `package stats

func main() {
	var n int
	var mean float64
	mh.Init()
	for {
		if mh.QueryIfMsgs("query") {
			mh.Read("query", &n)
			observe(n, n, &mean)
			mh.Log("v2 calibrated mean:", mean+0.5)
			mh.Write("query", mean+0.5)
		}
		mh.Sleep(1)
	}
}

func observe(total int, n int, mp *float64) {
	var sample float64
	if n <= 0 {
		*mp = 0.0
		return
	}
	observe(total, n-1, mp)
	mh.ReconfigPoint("R")
	mh.Read("feed", &sample)
	*mp = *mp + sample/float64(total)
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hotswap:", err)
		os.Exit(1)
	}
}

func run() error {
	type answer struct {
		n    int
		mean float64
	}
	answers := make(chan answer, 8)

	app, err := reconf.Load(reconf.Config{
		SpecText: spec,
		Sources: map[string]reconf.ModuleSource{
			"stats":   {Files: map[string]string{"stats.go": statsV1}},
			"statsV2": {Files: map[string]string{"stats.go": statsV2}},
		},
		Native: map[string]reconf.NativeModule{
			"feeder": func(rt *mh.Runtime) {
				rt.Init()
				v := 1.0
				for {
					rt.Write("out", v)
					v += 1.0
					rt.Sleep(1)
				}
			},
			"client": func(rt *mh.Runtime) {
				rt.Init()
				for i := 0; i < 6; i++ {
					rt.Write("ask", 4)
					var mean float64
					rt.Read("ask", &mean)
					answers <- answer{n: 4, mean: mean}
					rt.Sleep(2)
				}
			},
		},
		SleepUnit:    time.Millisecond,
		StateTimeout: 10 * time.Second,
	})
	if err != nil {
		return err
	}
	if err := app.Start(); err != nil {
		return err
	}
	defer app.Stop()

	fmt.Println("== v1 serving ==")
	for i := 0; i < 2; i++ {
		a := <-answers
		fmt.Printf("  mean of %d samples: %.3f\n", a.n, a.mean)
	}

	fmt.Println("\n== updating stats -> statsV2 (mid-call, state carried) ==")
	start := time.Now()
	if err := app.Update("stats", "stats2", "statsV2"); err != nil {
		return err
	}
	fmt.Printf("update completed in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Println(app.Topology())

	fmt.Println("\n== v2 serving (answers now calibrated +0.5) ==")
	for i := 0; i < 4; i++ {
		select {
		case a := <-answers:
			fmt.Printf("  mean of %d samples: %.3f\n", a.n, a.mean)
		case <-time.After(10 * time.Second):
			return fmt.Errorf("answer %d never arrived", i)
		}
	}
	return nil
}
