// Pipeline: replay-gated hot swap of a streaming stage under load.
//
// A four-stage streaming pipeline — source -> filter -> worker pool
// (replicas 2) -> sink — processes a numeric stream under credit-based
// backpressure (the sink grants one credit per processed item; the source
// keeps at most `window` items in flight). Every delivered message is
// recorded into the bus's record ring (Config.RecordBuffer), and
// replacements run with the replay gate on (Config.PreflightReplay):
// before a candidate module may commit, its outputs over the old
// instance's recorded input window are compared byte-for-byte against the
// old module's.
//
// The run demonstrates both verdicts while the stream keeps flowing:
//
//  1. filter -> filterV2: a reimplementation computing the same function,
//     so the gate passes and the hot swap commits mid-stream.
//  2. filter2 -> filterBad: an off-by-one "optimization", so the gate
//     vetoes the cutover, the transaction rolls back through its journal,
//     and the old stage keeps serving — not one message is lost or
//     miscomputed either way.
//
// The record/replay surfaces are exercised over HTTP (GET /record,
// GET /replay/{id}) and the control plane (the same ops reconfigctl's
// `record` and `replay` commands use).
//
//	go run ./examples/pipeline
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/mh"
	"repro/internal/reconfig"
	"repro/internal/state"
)

const spec = `
module source {
  source = "./source" ::
  define interface out pattern = {integer} ::
  use interface credit pattern = {^integer} ::
}

module filter {
  source = "./filter" ::
  use interface in pattern = {^integer} ::
  define interface out pattern = {integer} ::
  reconfiguration point = {R} ::
}

module filterV2 {
  source = "./filterV2" ::
  use interface in pattern = {^integer} ::
  define interface out pattern = {integer} ::
  reconfiguration point = {R} ::
}

module filterBad {
  source = "./filterBad" ::
  use interface in pattern = {^integer} ::
  define interface out pattern = {integer} ::
  reconfiguration point = {R} ::
}

module worker {
  source = "./worker" ::
  use interface in pattern = {^integer} ::
  define interface out pattern = {integer} ::
}

module sink {
  source = "./sink" ::
  use interface in pattern = {^integer} ::
  define interface credit pattern = {integer} ::
}

module pipeline {
  instance source on "machineA"
  instance filter on "machineA"
  instance worker as pool replicas 2 policy roundrobin
  instance sink on "machineB"
  bind "source out" "filter in"
  bind "filter out" "pool in"
  bind "pool out" "sink in"
  bind "sink credit" "source credit"
}
`

// filterSrc maps x to 3x+1. filterV2Src computes the same function a
// different way — the replay gate must find their output sequences
// byte-identical. filterBadSrc drops the +1: a behavioral change the gate
// must catch before cutover.
const filterSrc = `package filter

func main() {
	var x int
	mh.Init()
	for {
		mh.ReconfigPoint("R")
		mh.Read("in", &x)
		mh.Write("out", x*3+1)
	}
}
`

const filterV2Src = `package filterV2

func main() {
	var x int
	mh.Init()
	for {
		mh.ReconfigPoint("R")
		mh.Read("in", &x)
		mh.Write("out", x+x+x+1)
	}
}
`

const filterBadSrc = `package filterBad

func main() {
	var x int
	mh.Init()
	for {
		mh.ReconfigPoint("R")
		mh.Read("in", &x)
		mh.Write("out", x*3)
	}
}
`

const (
	items  = 60 // stream length
	window = 16 // credit window: max items in flight
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pipeline:", err)
		os.Exit(1)
	}
}

func run() error {
	// The sink hands items to this channel unbuffered, so the consumer
	// goroutine below paces the whole pipeline through backpressure: when
	// it stops taking items, credits stop, the source stalls, and the
	// stream freezes with at most `window`+1 items in flight.
	received := make(chan int)

	app, err := reconf.Load(reconf.Config{
		SpecText: spec,
		Sources: map[string]reconf.ModuleSource{
			"filter":    {Files: map[string]string{"filter.go": filterSrc}},
			"filterV2":  {Files: map[string]string{"filter.go": filterV2Src}},
			"filterBad": {Files: map[string]string{"filter.go": filterBadSrc}},
		},
		Native: map[string]reconf.NativeModule{
			// source: emit 1..items, never more than `window` unacknowledged.
			"source": func(rt *mh.Runtime) {
				rt.Init()
				credits := window
				for i := 1; i <= items; i++ {
					if credits == 0 {
						var c int
						rt.Read("credit", &c)
						credits += c
					}
					rt.Write("out", i)
					credits--
				}
			},
			// worker: a pass-through pool stage with a checkpointable
			// processed counter, standing in for a fan-out compute tier.
			"worker": func(rt *mh.Runtime) {
				rt.Init()
				processed := 0
				rt.RegisterSnapshot(func() (*state.State, error) {
					st := state.New(rt.Name())
					st.PushFrame(state.Frame{Func: "main", Location: 1,
						Vars: []state.Var{{Name: "processed", Value: state.IntValue(int64(processed))}}})
					return st, nil
				})
				for {
					if rt.QueryIfMsgs("in") {
						var n int
						rt.Read("in", &n)
						processed++
						rt.Write("out", n)
					} else {
						rt.Sleep(1)
					}
				}
			},
			// sink: acknowledge each item with one credit.
			"sink": func(rt *mh.Runtime) {
				rt.Init()
				for {
					var v int
					rt.Read("in", &v)
					rt.Write("credit", 1)
					received <- v
				}
			},
		},
		SleepUnit:       time.Millisecond,
		StateTimeout:    10 * time.Second,
		RecordBuffer:    4096,
		PreflightReplay: true,
	})
	if err != nil {
		return err
	}
	if err := app.Start(); err != nil {
		return err
	}
	defer app.Stop()
	fmt.Println("pipeline: source -> filter -> pool (replicas 2) -> sink")
	fmt.Printf("recording: ring capacity %d, preflight replay on, credit window %d\n",
		app.Recorder().Cap(), window)

	// Observability and control surfaces (the ones curl and reconfigctl
	// would hit on a real deployment).
	obsL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	obs := app.ServeObs(obsL)
	defer obs.Close()
	ctlL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctl := app.ServeControl(ctlL)
	defer ctl.Close()

	// Collect the stream in three token-gated phases, hot-swapping between
	// them: each grant() releases a batch, so a swap issued right after a
	// grant runs under live traffic, and the stream can never race to
	// completion before the next swap. The pool replicas may reorder
	// items, so correctness is per-value shape plus a final
	// count-and-sum check.
	tokens := make(chan struct{}, items)
	grant := func(n int) {
		for i := 0; i < n; i++ {
			tokens <- struct{}{}
		}
	}
	var got, sum atomic.Int64
	consumed := make(chan error, 1)
	go func() { //archlint:spawn stream consumer; paces the pipeline, joined via `consumed`

		for i := 0; i < items; i++ {
			<-tokens
			v := <-received
			if (v-1)%3 != 0 || v < 4 || v > items*3+1 {
				consumed <- fmt.Errorf("sink received %d, not of the form 3x+1", v)
				return
			}
			sum.Add(int64(v))
			got.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
		consumed <- nil
	}()
	waitFor := func(n int) error {
		deadline := time.Now().Add(15 * time.Second)
		for got.Load() < int64(n) {
			if time.Now().After(deadline) {
				return fmt.Errorf("stream stalled at item %d of %d", got.Load(), n)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}

	grant(items / 3)
	if err := waitFor(items / 3); err != nil {
		return err
	}
	var recStatus reconf.RecordStatus
	if err := getJSON("http://"+obs.Addr().String()+"/record", &recStatus); err != nil {
		return err
	}
	fmt.Printf("\nfirst %d items flowed; GET /record: enabled=%v recorded=%d queues=%d\n",
		got.Load(), recStatus.Enabled, recStatus.Recorded, len(recStatus.Queues))

	// Replay the filter's recorded window over HTTP — the same reproduction
	// check `reconfigctl replay filter` runs. (The check targets the
	// original filter: its whole life is recorded, whereas a swapped-in
	// instance inherits its predecessor's queue backlog through unrecorded
	// queue transfers.)
	var rep reconf.ReplayReport
	if err := getJSON("http://"+obs.Addr().String()+"/replay/filter", &rep); err != nil {
		return err
	}
	if !rep.Match {
		return fmt.Errorf("replay of filter diverged: %+v", rep)
	}
	fmt.Printf("replay reproduced the recorded window for filter (%d inputs, %d outputs)\n",
		rep.Window, rep.Replayed)

	// Swap 1: behavior-identical reimplementation. The gate replays the
	// filter's recorded inputs against both modules and finds the output
	// sequences byte-identical, so the cutover commits under load.
	fmt.Println("\n== hot swap: filter -> filterV2 (replay gate on) ==")
	grant(items / 3) // keep traffic flowing through the swap
	start := time.Now()
	if err := app.Update("filter", "filter2", "filterV2"); err != nil {
		return err
	}
	fmt.Printf("hot-swapped filter -> filter2 (replay gate passed) in %v\n",
		time.Since(start).Round(time.Millisecond))

	if err := waitFor(2 * items / 3); err != nil {
		return err
	}

	// Swap 2: a divergent candidate. The gate catches the off-by-one on
	// the recorded window and the transaction rolls back before commit —
	// the stream never sees a wrong value.
	fmt.Println("\n== hot swap attempt: filter2 -> filterBad ==")
	grant(items - 2*(items/3)) // the final batch rides through the veto
	res, err := app.ReplaceTx("filter2", reconfig.ReplaceOptions{NewName: "filter3", Module: "filterBad"})
	if err == nil {
		return fmt.Errorf("divergent candidate committed")
	}
	fmt.Printf("replay gate rejected filterBad: %v\n", firstLine(err.Error()))
	if res == nil || !res.RolledBack {
		return fmt.Errorf("no rollback after veto: %+v", res)
	}
	fmt.Println("rolled back before commit; filter2 keeps serving")

	if err := waitFor(items); err != nil {
		return err
	}
	if err := <-consumed; err != nil {
		return err
	}
	wantSum := int64(0)
	for i := 1; i <= items; i++ {
		wantSum += int64(i*3 + 1)
	}
	if sum.Load() != wantSum {
		return fmt.Errorf("stream sum = %d, want %d (values corrupted?)", sum.Load(), wantSum)
	}
	fmt.Printf("\nall %d values correct through the hot swap and the vetoed swap\n", items)

	// Control-plane finale: stop recording via the same op `reconfigctl
	// record off` sends.
	c, err := reconf.DialControl(ctl.Addr().String(), 2*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	status, err := c.Record("off")
	if err != nil {
		return err
	}
	if strings.Contains(status, `"enabled": true`) {
		return fmt.Errorf("record off did not disable: %s", status)
	}
	fmt.Println("recording disabled via control plane")
	fmt.Println("\nfinal topology:")
	fmt.Println(app.Topology())
	return nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
