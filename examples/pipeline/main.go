// Pipeline: migrating a stateful middle stage under load.
//
// A three-stage pipeline — generator -> smoother -> sink — processes a
// numeric stream. The smoother keeps a running window state and is
// relocated to another machine while messages are in flight; the sink
// verifies that the smoothed stream arrives gap-free and in order across
// the migration (the cq primitive carries queued messages to the new
// instance).
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/mh"
)

const spec = `
module generator {
  source = "./generator" ::
  define interface out pattern = {integer} ::
}

module smoother {
  source = "./smoother" ::
  use interface in pattern = {^integer} ::
  define interface out pattern = {float} ::
  reconfiguration point = {R} ::
}

module sink {
  source = "./sink" ::
  use interface in pattern = {^float} ::
}

module pipeline {
  instance generator on "machineA"
  instance smoother on "machineA"
  instance sink on "machineA"
  bind "generator out" "smoother in"
  bind "smoother out" "sink in"
}
`

// smootherSrc emits, for every input x, the mean of the last 3 inputs —
// window state that must survive the migration.
const smootherSrc = `package smoother

func main() {
	var window []int
	var x int
	mh.Init()
	for {
		mh.ReconfigPoint("R")
		mh.Read("in", &x)
		window = append(window, x)
		if len(window) > 3 {
			window = window[1:]
		}
		total := 0
		for _, v := range window {
			total += v
		}
		mh.Write("out", float64(total)/float64(len(window)))
	}
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pipeline:", err)
		os.Exit(1)
	}
}

func run() error {
	const items = 40
	type item struct {
		i int
		v float64
	}
	received := make(chan item, items)

	app, err := reconf.Load(reconf.Config{
		SpecText: spec,
		Sources: map[string]reconf.ModuleSource{
			"smoother": {Files: map[string]string{"smoother.go": smootherSrc}},
		},
		Native: map[string]reconf.NativeModule{
			"generator": func(rt *mh.Runtime) {
				rt.Init()
				for i := 1; i <= items; i++ {
					rt.Write("out", i*10)
					rt.Sleep(1)
				}
			},
			"sink": func(rt *mh.Runtime) {
				rt.Init()
				for i := 0; i < items; i++ {
					var v float64
					rt.Read("in", &v)
					received <- item{i: i, v: v}
				}
			},
		},
		SleepUnit:    time.Millisecond,
		StateTimeout: 10 * time.Second,
	})
	if err != nil {
		return err
	}
	if err := app.Start(); err != nil {
		return err
	}
	defer app.Stop()

	// Expected smoothed stream: input i*10, window of up to last 3.
	expect := func(i int) float64 { // i is 0-based output index
		switch i {
		case 0:
			return 10
		case 1:
			return 15
		default:
			return float64((i-1)*10+i*10+(i+1)*10) / 3
		}
	}

	fmt.Println("== pipeline running ==")
	got := 0
	for ; got < 10; got++ {
		it := <-received
		if it.v != expect(it.i) {
			return fmt.Errorf("item %d = %v, want %v", it.i, it.v, expect(it.i))
		}
	}
	fmt.Printf("first %d smoothed values verified\n", got)

	fmt.Println("\n== migrating smoother to machineB under load ==")
	start := time.Now()
	if err := app.Move("smoother", "smoother2", "machineB"); err != nil {
		return err
	}
	fmt.Printf("migration took %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Println(app.Topology())

	for ; got < items; got++ {
		select {
		case it := <-received:
			if it.v != expect(it.i) {
				return fmt.Errorf("item %d = %v, want %v (window state lost?)", it.i, it.v, expect(it.i))
			}
		case <-time.After(10 * time.Second):
			return fmt.Errorf("item %d never arrived (message lost in migration?)", got)
		}
	}
	fmt.Printf("\nall %d smoothed values correct and in order across the migration\n", items)
	fmt.Println("window state, in-flight queue, and bindings all moved intact")
	return nil
}
