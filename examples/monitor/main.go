// The Monitor example — the paper's Section 2, end to end.
//
// All three modules (sensor, compute, display) are written in the module
// language; compute is moved from machineA to machineB while it is in the
// middle of its recursive averaging procedure, so the activation-record
// stack is captured mid-recursion, shipped in the abstract format, and
// rebuilt on the new machine.
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/codec"
	"repro/internal/fixtures"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "monitor:", err)
		os.Exit(1)
	}
}

func run() error {
	app, err := reconf.Load(reconf.Config{
		SpecText: fixtures.MonitorSpec,
		Sources: map[string]reconf.ModuleSource{
			"compute": {Files: map[string]string{"compute.go": fixtures.ComputeSource}},
			"sensor":  {Files: map[string]string{"sensor.go": fixtures.SensorSource}},
			"display": {Files: map[string]string{"display.go": fixtures.DisplaySource}},
		},
		SleepUnit:    time.Millisecond,
		StateTimeout: 10 * time.Second,
	})
	if err != nil {
		return err
	}

	// Show what the transformation did to compute (Figure 3 -> Figure 4).
	out := app.Module("compute").Output
	fmt.Println("== reconfiguration graph (Figure 6) ==")
	fmt.Print(out.Graph.String())
	fmt.Println("\n== capture sets ==")
	fmt.Print(out.ReportString())
	src, err := out.Source()
	if err != nil {
		return err
	}
	fmt.Println("== instrumented compute procedure (Figure 4) ==")
	idx := strings.Index(src, "func compute")
	fmt.Println(src[idx:])

	fmt.Println("== configuration before (Figure 1, left) ==")
	fmt.Println(app.Topology())
	if err := app.Start(); err != nil {
		return err
	}
	defer app.Stop()

	// Let the application serve a couple of requests.
	time.Sleep(50 * time.Millisecond)

	fmt.Println("\n== moving compute to machineB while it executes ==")
	if err := app.Move("compute", "compute2", "machineB"); err != nil {
		return err
	}

	fmt.Println("\n== configuration after (Figure 1, right) ==")
	fmt.Println(app.Topology())

	// Keep serving across the move.
	time.Sleep(100 * time.Millisecond)

	fmt.Println("\n== reconfiguration primitives (Figure 5) ==")
	fmt.Println(reconf.FormatTrace(app.Trace()))

	st := app.Bus().Stats()
	fmt.Printf("\nbus stats: delivered=%d dropped=%d rebinds=%d signals=%d queue-moves=%d\n",
		st.Delivered, st.Dropped, st.Rebinds, st.Signals, st.Moves)
	_ = codec.Default()
	return nil
}
