package reconf

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/fixtures"
	"repro/internal/mh"
	"repro/internal/reconfig"
	"repro/internal/telemetry/trace"
)

// serveObs starts an App's observability endpoint on an ephemeral port and
// returns its base URL.
func serveObs(t *testing.T, app *App) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := app.ServeObs(l)
	t.Cleanup(func() { srv.Close() })
	return "http://" + srv.Addr().String()
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestObsMetricsEndpoint drives traffic through a committed replacement and
// asserts /metrics serves Prometheus text including the bus counters and the
// reconfiguration latency histogram buckets (acceptance criterion).
func TestObsMetricsEndpoint(t *testing.T) {
	app, d, feed := startInterrupted(t)
	base := serveObs(t, app)
	feed()
	res, err := app.ReplaceTx("compute", reconfig.ReplaceOptions{NewName: "compute2"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("replace did not commit: %+v", res)
	}
	finishComputation(t, d)

	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics returned %d", code)
	}
	for _, want := range []string{
		"# TYPE bus_delivered_total counter",
		"bus_rebinds_total 1",
		"# TYPE bus_iface_delivered counter",
		`bus_iface_delivered{instance="display",interface="temper"}`,
		`bus_iface_queue_depth{instance="display",interface="temper"}`,
		"# TYPE reconfig_span_quiesce_wait_ns histogram",
		`reconfig_span_quiesce_wait_ns_bucket{le="+Inf"} 1`,
		"reconfig_tx_total_ns_count 1",
		"_bucket{le=\"0\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestObsHealthFlipsDuringQuiesce pins the readiness contract: /healthz and
// /readyz report 503 "reconfiguring" while a Replace transaction is waiting
// out its quiesce, and recover once it commits.
func TestObsHealthFlipsDuringQuiesce(t *testing.T) {
	app, d, _ := startInterrupted(t)
	base := serveObs(t, app)

	if code, body := httpGet(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz before replace = %d %q, want 200 ok", code, body)
	}

	done := make(chan error, 1)
	go func() {
		_, err := app.ReplaceTx("compute", reconfig.ReplaceOptions{NewName: "compute2"})
		done <- err
	}()

	// The transaction is stuck in quiesce_wait until a temperature releases
	// the module; both health endpoints must report unready meanwhile.
	flipped := false
	for i := 0; i < 100; i++ {
		if code, _ := httpGet(t, base+"/readyz"); code == http.StatusServiceUnavailable {
			flipped = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !flipped {
		t.Error("/readyz never flipped to 503 during the in-flight replace")
	}
	if code, body := httpGet(t, base+"/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "reconfiguring") {
		t.Errorf("/healthz during quiesce = %d %q, want 503 reconfiguring", code, body)
	}

	d.temperature(60)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if code, _ := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz after commit = %d, want 200", code)
	}
	finishComputation(t, d)
}

// loadMonitorSampled is loadMonitor with full head sampling, so every
// delivery lands in the flight recorder.
func loadMonitorSampled(t *testing.T) *App {
	t.Helper()
	app, err := Load(Config{
		SpecText: fixtures.MonitorSpec,
		Sources: map[string]ModuleSource{
			"compute": {Files: map[string]string{"compute.go": fixtures.ComputeSource}},
		},
		Native: map[string]NativeModule{
			"display": func(rt *mh.Runtime) {},
			"sensor":  func(rt *mh.Runtime) {},
		},
		SleepUnit:    time.Microsecond,
		StateTimeout: 10 * time.Second,
		TraceSample:  1,
		TraceBuffer:  256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestObsTracesEndpoints exercises /traces and /trace/{id} against a sampled
// application: a request/response roundtrip leaves delivery spans in the
// flight recorder, retrievable whole-buffer and per-trace.
func TestObsTracesEndpoints(t *testing.T) {
	app := loadMonitorSampled(t)
	t.Cleanup(app.Stop)
	d := newDriver(t, app)
	if err := app.Launch("compute"); err != nil {
		t.Fatal(err)
	}
	base := serveObs(t, app)

	d.request(1)
	d.temperature(50)
	if got := d.response(); got != 50 {
		t.Fatalf("response = %g, want 50", got)
	}

	code, body := httpGet(t, base+"/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces returned %d", code)
	}
	var spans []trace.SpanRecord
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/traces is not a span array: %v\n%s", err, body)
	}
	if len(spans) == 0 {
		t.Fatal("/traces is empty after a sampled roundtrip")
	}

	code, body = httpGet(t, fmt.Sprintf("%s/trace/%d", base, spans[0].TraceID))
	if code != http.StatusOK {
		t.Fatalf("/trace/%d returned %d: %s", spans[0].TraceID, code, body)
	}
	if !strings.Contains(body, fmt.Sprintf(`"trace_id": %d`, spans[0].TraceID)) {
		t.Errorf("/trace/{id} response lacks the trace id:\n%s", body)
	}

	// The 0x-prefixed hex form (as printed in quiesce annotations) resolves
	// the same trace.
	code, _ = httpGet(t, fmt.Sprintf("%s/trace/0x%x", base, spans[0].TraceID))
	if code != http.StatusOK {
		t.Errorf("/trace/{hex id} returned %d", code)
	}

	if code, _ := httpGet(t, base+"/trace/tx-9999"); code != http.StatusNotFound {
		t.Errorf("/trace/tx-9999 returned %d, want 404", code)
	}
}

// TestObsTimeseriesHealthEvents exercises the windowed-telemetry surface
// end to end: /timeseries lists and serves windowed series, /health/{i}
// returns a structured verdict, and /events tails the structured log (the
// bus's own topology events land there through the observer bridge).
func TestObsTimeseriesHealthEvents(t *testing.T) {
	app, d, _ := startInterrupted(t)
	base := serveObs(t, app)
	d.temperature(60)
	finishComputation(t, d)

	// Roll two windows by hand rather than waiting out the wall clock.
	app.Timeseries().Roll()
	app.Timeseries().Roll()

	code, body := httpGet(t, base+"/timeseries")
	if code != http.StatusOK {
		t.Fatalf("/timeseries returned %d", code)
	}
	var listing struct {
		WindowNs int64    `json:"window_ns"`
		Metrics  []string `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("/timeseries listing: %v\n%s", err, body)
	}
	metric := "bus.iface.display.temper.delivered"
	found := false
	for _, m := range listing.Metrics {
		if m == metric {
			found = true
		}
	}
	if !found {
		t.Fatalf("/timeseries listing lacks %s: %v", metric, listing.Metrics)
	}

	code, body = httpGet(t, base+"/timeseries?metric="+metric+"&window=1")
	if code != http.StatusOK {
		t.Fatalf("/timeseries?metric returned %d: %s", code, body)
	}
	var series struct {
		Kind   string `json:"kind"`
		Points []struct {
			Value int64 `json:"value"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/timeseries series: %v\n%s", err, body)
	}
	if series.Kind != "counter" || len(series.Points) != 1 {
		t.Errorf("series = kind %s with %d points, want counter with 1 window", series.Kind, len(series.Points))
	}
	if code, _ := httpGet(t, base+"/timeseries?metric=no.such.metric"); code != http.StatusNotFound {
		t.Errorf("/timeseries unknown metric returned %d, want 404", code)
	}

	code, body = httpGet(t, base+"/health/display")
	if code != http.StatusOK {
		t.Fatalf("/health/display returned %d: %s", code, body)
	}
	var verdict struct {
		Instance string `json:"instance"`
		Level    string `json:"level"`
	}
	if err := json.Unmarshal([]byte(body), &verdict); err != nil {
		t.Fatalf("/health verdict: %v\n%s", err, body)
	}
	if verdict.Instance != "display" || verdict.Level == "" {
		t.Errorf("verdict = %+v, want instance display with a level", verdict)
	}
	if code, _ := httpGet(t, base+"/health/no-such-instance"); code != http.StatusNotFound {
		t.Errorf("/health unknown instance returned %d, want 404", code)
	}
	// /healthz still resolves to the liveness probe, not the verdict route.
	if code, body := httpGet(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q after adding /health/", code, body)
	}

	code, body = httpGet(t, base+"/events")
	if code != http.StatusOK {
		t.Fatalf("/events returned %d", code)
	}
	var events struct {
		Cursor uint64 `json:"cursor"`
		Events []struct {
			Seq    uint64 `json:"seq"`
			Source string `json:"source"`
			Kind   string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/events: %v\n%s", err, body)
	}
	if len(events.Events) == 0 {
		t.Fatal("/events empty after Load (add-instance events expected)")
	}
	sawBus := false
	for _, e := range events.Events {
		if e.Source == "bus" && e.Kind == "add-instance" {
			sawBus = true
		}
	}
	if !sawBus {
		t.Error("no bus add-instance event bridged into the log")
	}
	// Cursor paging: everything before the cursor is excluded.
	code, body = httpGet(t, fmt.Sprintf("%s/events?since=%d", base, events.Cursor))
	if code != http.StatusOK {
		t.Fatalf("/events?since returned %d", code)
	}
	var tail struct {
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &tail); err != nil {
		t.Fatal(err)
	}
	if len(tail.Events) != 0 {
		t.Errorf("/events?since=cursor returned %d events, want 0", len(tail.Events))
	}
}

// TestObsServerTimeoutsSet pins the slowloris hardening: the obs server
// must carry read/header/write timeouts.
func TestObsServerTimeoutsSet(t *testing.T) {
	app, _, _ := startInterrupted(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := app.ServeObs(l)
	t.Cleanup(func() { srv.Close() })
	if srv.srv.ReadHeaderTimeout <= 0 || srv.srv.ReadTimeout <= 0 || srv.srv.WriteTimeout <= 0 {
		t.Errorf("obs server timeouts unset: header=%v read=%v write=%v",
			srv.srv.ReadHeaderTimeout, srv.srv.ReadTimeout, srv.srv.WriteTimeout)
	}
}
