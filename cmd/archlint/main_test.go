package main

import (
	"strings"
	"testing"
)

func TestRunCleanTree(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-C", "../..", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on the repository, want 0; stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if got := out.String(); got != "ok: no diagnostics\n" {
		t.Errorf("stdout = %q", got)
	}
}

func TestRunDirtyTree(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-C", "../../internal/archlint/testdata/AL009/bad"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on a dirty fixture, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "AL009") {
		t.Errorf("stdout missing AL009 diagnostic:\n%s", out.String())
	}
}

func TestRunJSON(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", "-C", "../../internal/archlint/testdata/AL009/bad"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	got := out.String()
	if !strings.HasPrefix(got, "{") || !strings.Contains(got, `"code": "AL009"`) {
		t.Errorf("not the expected JSON report:\n%s", got)
	}
}

func TestRunUsageError(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d on a bad flag, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage: archlint") {
		t.Errorf("stderr missing usage: %s", errOut.String())
	}
}

func TestRunNoModule(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-C", "/"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d outside a module, want 2; stderr: %s", code, errOut.String())
	}
}
