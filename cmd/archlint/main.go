// Command archlint checks the repository's architectural invariants: trace
// minting confined to the bus layer, the Bus.mu locking discipline, the
// copy-on-write routing snapshot protocol, allocation-free hot paths,
// journaled topology mutations inside reconfiguration transactions,
// allowlisted goroutine spawn sites, and the package- and file-level
// layering DAG. See internal/archlint for the diagnostic codes.
//
// Usage:
//
//	archlint [-json] [-C dir] [packages]
//
// The analyzer always checks the whole module containing dir (default:
// the current directory); a trailing package pattern such as ./... is
// accepted for familiarity and ignored. Exit status is 0 when the tree is
// clean, 1 when any diagnostic is reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/archlint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("archlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	dir := fs.String("C", ".", "directory inside the module to check")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: archlint [-json] [-C dir] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "archlint: %v\n", err)
		return 2
	}
	report, err := archlint.Run(archlint.Config{Dir: root})
	if err != nil {
		fmt.Fprintf(stderr, "archlint: %v\n", err)
		return 2
	}
	if *jsonOut {
		fmt.Fprint(stdout, report.JSON())
	} else {
		fmt.Fprint(stdout, report.Text())
	}
	if len(report.Diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot ascends from dir to the nearest directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}
