package main

import "testing"

func art(ratio, single float64) busArtifact {
	var a busArtifact
	a.Scaling.ThroughputRatio = ratio
	a.Configs = []struct {
		Senders  int     `json:"senders"`
		NsPerMsg float64 `json:"ns_per_msg"`
	}{{Senders: 1, NsPerMsg: single}, {Senders: 16, NsPerMsg: single * 1.1}}
	return a
}

func oh(telemetryOn float64) overheadArtifact {
	var o overheadArtifact
	o.MessageRoundtrip.TelemetryOnNsOp = telemetryOn
	return o
}

func TestGate(t *testing.T) {
	base := art(1.10, 440)
	cases := []struct {
		name    string
		current busArtifact
		ov      overheadArtifact
		fails   int
	}{
		{"clean", art(1.05, 450), oh(255), 0},
		{"single at exactly +10% passes", art(1.05, 440*1.10), oh(255), 0},
		{"ratio below floor", art(0.90, 450), oh(255), 1},
		{"single-sender regression", art(1.05, 440*1.11), oh(255), 1},
		{"telemetry budget blown", art(1.05, 450), oh(300), 1},
		{"everything wrong", art(0.80, 600), oh(350), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fails := gate(base, tc.current, tc.ov)
			if len(fails) != tc.fails {
				t.Fatalf("got %d failures, want %d: %v", len(fails), tc.fails, fails)
			}
		})
	}
}

func ts(rollupsOn, allocDelta float64) timeseriesArtifact {
	var a timeseriesArtifact
	a.MessageRoundtrip.RollupsOnNsOp = rollupsOn
	a.MessageRoundtrip.AllocsPerMsgDelta = allocDelta
	return a
}

func TestGateTimeseries(t *testing.T) {
	cases := []struct {
		name  string
		art   timeseriesArtifact
		fails int
	}{
		{"clean", ts(260, 0), 0},
		{"budget blown", ts(300, 0), 1},
		{"allocating", ts(260, 1), 1},
		{"both wrong", ts(450, 2), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fails := gateTimeseries(tc.art)
			if len(fails) != tc.fails {
				t.Fatalf("got %d failures, want %d: %v", len(fails), tc.fails, fails)
			}
		})
	}
}

func TestGateMissingSingleConfig(t *testing.T) {
	var empty busArtifact
	empty.Scaling.ThroughputRatio = 1.0
	fails := gate(empty, empty, oh(255))
	if len(fails) != 2 {
		t.Fatalf("missing senders=1 in both artifacts should fail twice, got %v", fails)
	}
}
