// Command perfgate is the hot-path performance regression gate. It parses
// a freshly regenerated BENCH_bus_throughput.json, the committed baseline
// it is replacing, and the regenerated BENCH_overhead.json, and fails when
// the lock-free ring's headline numbers regress:
//
//   - scaling_16_vs_1.throughput_ratio below 0.95 — the MPSC ring must not
//     collapse under 16 concurrent senders the way the mutex queue did;
//   - single-sender ns/msg more than 10% above the committed baseline —
//     the uncontended path must not pay for the contended one;
//   - telemetry-on message roundtrip at or above 300 ns/msg — the traced
//     hot path budget (two atomic adds, no clock read on unsampled);
//   - with -timeseries, the same 300 ns budget for the roundtrip measured
//     while the rollup roller is live against the same registry, and an
//     allocation delta of exactly zero — windowed history must cost the
//     steady state nothing (BENCH_timeseries_overhead.json).
//
// scripts/check.sh snapshots the committed artifact before regenerating,
// then runs this gate over the pair. Exit status 1 means a regression;
// thresholds leave ~10% headroom for single-core benchmark variance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type busArtifact struct {
	Configs []struct {
		Senders  int     `json:"senders"`
		NsPerMsg float64 `json:"ns_per_msg"`
	} `json:"configs"`
	Scaling struct {
		ThroughputRatio float64 `json:"throughput_ratio"`
	} `json:"scaling_16_vs_1"`
}

type overheadArtifact struct {
	MessageRoundtrip struct {
		TelemetryOnNsOp float64 `json:"telemetry_on_ns_op"`
	} `json:"message_roundtrip"`
}

type timeseriesArtifact struct {
	MessageRoundtrip struct {
		RollupsOnNsOp     float64 `json:"rollups_on_ns_op"`
		AllocsPerMsgDelta float64 `json:"allocs_per_msg_delta"`
	} `json:"message_roundtrip"`
}

const (
	minScalingRatio  = 0.95
	maxSingleRegress = 1.10
	maxTelemetryOnNs = 300.0
)

// singleSender returns the ns/msg of the 1-sender config, or an error if
// the artifact lacks one.
func singleSender(a busArtifact) (float64, error) {
	for _, c := range a.Configs {
		if c.Senders == 1 {
			return c.NsPerMsg, nil
		}
	}
	return 0, fmt.Errorf("no senders=1 config in artifact")
}

// gate returns every threshold violation in the current artifacts measured
// against the committed baseline.
func gate(baseline, current busArtifact, overhead overheadArtifact) []string {
	var fails []string
	if r := current.Scaling.ThroughputRatio; r < minScalingRatio {
		fails = append(fails, fmt.Sprintf(
			"16-vs-1 throughput ratio %.3f below floor %.2f: the ring is collapsing under contention",
			r, minScalingRatio))
	}
	cur, err := singleSender(current)
	if err != nil {
		fails = append(fails, "current: "+err.Error())
	}
	base, err := singleSender(baseline)
	if err != nil {
		fails = append(fails, "baseline: "+err.Error())
	}
	if cur != 0 && base != 0 && cur > base*maxSingleRegress {
		fails = append(fails, fmt.Sprintf(
			"single-sender %.1f ns/msg regressed more than %.0f%% over committed %.1f ns/msg",
			cur, (maxSingleRegress-1)*100, base))
	}
	if ns := overhead.MessageRoundtrip.TelemetryOnNsOp; ns >= maxTelemetryOnNs {
		fails = append(fails, fmt.Sprintf(
			"telemetry-on roundtrip %.1f ns/msg at or above the %.0f ns budget", ns, maxTelemetryOnNs))
	}
	return fails
}

// gateTimeseries holds the rollups-on roundtrip to the same hot-path
// budget and requires a zero allocation delta per message.
func gateTimeseries(ts timeseriesArtifact) []string {
	var fails []string
	if ns := ts.MessageRoundtrip.RollupsOnNsOp; ns >= maxTelemetryOnNs {
		fails = append(fails, fmt.Sprintf(
			"rollups-on roundtrip %.1f ns/msg at or above the %.0f ns budget: the roller is leaking onto the hot path",
			ns, maxTelemetryOnNs))
	}
	if d := ts.MessageRoundtrip.AllocsPerMsgDelta; d != 0 {
		fails = append(fails, fmt.Sprintf(
			"rollups add %.2f allocs per message, want exactly 0", d))
	}
	return fails
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func main() {
	baselinePath := flag.String("baseline", "", "committed BENCH_bus_throughput.json snapshot")
	currentPath := flag.String("current", "BENCH_bus_throughput.json", "regenerated throughput artifact")
	overheadPath := flag.String("overhead", "BENCH_overhead.json", "regenerated overhead artifact")
	timeseriesPath := flag.String("timeseries", "", "regenerated BENCH_timeseries_overhead.json (optional: gates the rollups-on roundtrip)")
	flag.Parse()

	var baseline, current busArtifact
	var overhead overheadArtifact
	for _, in := range []struct {
		path string
		v    any
	}{
		{*baselinePath, &baseline}, {*currentPath, &current}, {*overheadPath, &overhead},
	} {
		if err := readJSON(in.path, in.v); err != nil {
			fmt.Fprintln(os.Stderr, "perfgate:", err)
			os.Exit(2)
		}
	}
	fails := gate(baseline, current, overhead)
	rollupsLine := ""
	if *timeseriesPath != "" {
		var ts timeseriesArtifact
		if err := readJSON(*timeseriesPath, &ts); err != nil {
			fmt.Fprintln(os.Stderr, "perfgate:", err)
			os.Exit(2)
		}
		fails = append(fails, gateTimeseries(ts)...)
		rollupsLine = fmt.Sprintf(", rollups-on %.1f ns with 0 alloc delta",
			ts.MessageRoundtrip.RollupsOnNsOp)
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "perfgate: FAIL:", f)
		}
		os.Exit(1)
	}
	cur, _ := singleSender(current)
	fmt.Printf("perfgate: ok (ratio %.3f >= %.2f, single-sender %.1f ns/msg, telemetry-on %.1f ns < %.0f%s)\n",
		current.Scaling.ThroughputRatio, minScalingRatio, cur,
		overhead.MessageRoundtrip.TelemetryOnNsOp, maxTelemetryOnNs, rollupsLine)
}
