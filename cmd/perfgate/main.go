// Command perfgate is the hot-path performance regression gate. It parses
// a freshly regenerated BENCH_bus_throughput.json, the committed baseline
// it is replacing, and the regenerated BENCH_overhead.json, and fails when
// the lock-free ring's headline numbers regress:
//
//   - scaling_16_vs_1.throughput_ratio below 0.95 — the MPSC ring must not
//     collapse under 16 concurrent senders the way the mutex queue did;
//   - single-sender ns/msg more than 10% above the committed baseline —
//     the uncontended path must not pay for the contended one;
//   - telemetry-on message roundtrip at or above 300 ns/msg — the traced
//     hot path budget (two atomic adds, no clock read on unsampled).
//
// scripts/check.sh snapshots the committed artifact before regenerating,
// then runs this gate over the pair. Exit status 1 means a regression;
// thresholds leave ~10% headroom for single-core benchmark variance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type busArtifact struct {
	Configs []struct {
		Senders  int     `json:"senders"`
		NsPerMsg float64 `json:"ns_per_msg"`
	} `json:"configs"`
	Scaling struct {
		ThroughputRatio float64 `json:"throughput_ratio"`
	} `json:"scaling_16_vs_1"`
}

type overheadArtifact struct {
	MessageRoundtrip struct {
		TelemetryOnNsOp float64 `json:"telemetry_on_ns_op"`
	} `json:"message_roundtrip"`
}

const (
	minScalingRatio  = 0.95
	maxSingleRegress = 1.10
	maxTelemetryOnNs = 300.0
)

// singleSender returns the ns/msg of the 1-sender config, or an error if
// the artifact lacks one.
func singleSender(a busArtifact) (float64, error) {
	for _, c := range a.Configs {
		if c.Senders == 1 {
			return c.NsPerMsg, nil
		}
	}
	return 0, fmt.Errorf("no senders=1 config in artifact")
}

// gate returns every threshold violation in the current artifacts measured
// against the committed baseline.
func gate(baseline, current busArtifact, overhead overheadArtifact) []string {
	var fails []string
	if r := current.Scaling.ThroughputRatio; r < minScalingRatio {
		fails = append(fails, fmt.Sprintf(
			"16-vs-1 throughput ratio %.3f below floor %.2f: the ring is collapsing under contention",
			r, minScalingRatio))
	}
	cur, err := singleSender(current)
	if err != nil {
		fails = append(fails, "current: "+err.Error())
	}
	base, err := singleSender(baseline)
	if err != nil {
		fails = append(fails, "baseline: "+err.Error())
	}
	if cur != 0 && base != 0 && cur > base*maxSingleRegress {
		fails = append(fails, fmt.Sprintf(
			"single-sender %.1f ns/msg regressed more than %.0f%% over committed %.1f ns/msg",
			cur, (maxSingleRegress-1)*100, base))
	}
	if ns := overhead.MessageRoundtrip.TelemetryOnNsOp; ns >= maxTelemetryOnNs {
		fails = append(fails, fmt.Sprintf(
			"telemetry-on roundtrip %.1f ns/msg at or above the %.0f ns budget", ns, maxTelemetryOnNs))
	}
	return fails
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func main() {
	baselinePath := flag.String("baseline", "", "committed BENCH_bus_throughput.json snapshot")
	currentPath := flag.String("current", "BENCH_bus_throughput.json", "regenerated throughput artifact")
	overheadPath := flag.String("overhead", "BENCH_overhead.json", "regenerated overhead artifact")
	flag.Parse()

	var baseline, current busArtifact
	var overhead overheadArtifact
	for _, in := range []struct {
		path string
		v    any
	}{
		{*baselinePath, &baseline}, {*currentPath, &current}, {*overheadPath, &overhead},
	} {
		if err := readJSON(in.path, in.v); err != nil {
			fmt.Fprintln(os.Stderr, "perfgate:", err)
			os.Exit(2)
		}
	}
	if fails := gate(baseline, current, overhead); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "perfgate: FAIL:", f)
		}
		os.Exit(1)
	}
	cur, _ := singleSender(current)
	fmt.Printf("perfgate: ok (ratio %.3f >= %.2f, single-sender %.1f ns/msg, telemetry-on %.1f ns < %.0f)\n",
		current.Scaling.ThroughputRatio, minScalingRatio, cur,
		overhead.MessageRoundtrip.TelemetryOnNsOp, maxTelemetryOnNs)
}
