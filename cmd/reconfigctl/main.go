// Command reconfigctl drives dynamic reconfigurations against a running
// polybus application over its control plane.
//
//	reconfigctl -addr 127.0.0.1:7008 topology
//	reconfigctl -addr 127.0.0.1:7008 instances
//	reconfigctl -addr 127.0.0.1:7008 move <inst> <newName> <machine>
//	reconfigctl -addr 127.0.0.1:7008 replace <inst> <newName> [machine] [module]
//	reconfigctl -addr 127.0.0.1:7008 update <inst> <newName> <module>
//	reconfigctl -addr 127.0.0.1:7008 replicate <inst> <newName> [machine]
//	reconfigctl -addr 127.0.0.1:7008 remove <inst>
//	reconfigctl -addr 127.0.0.1:7008 trace
//	reconfigctl -addr 127.0.0.1:7008 stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reconfigctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("reconfigctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7008", "control plane address")
	timeout := fs.Duration("timeout", 5*time.Second, "dial timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("no command (topology|instances|move|replace|update|replicate|remove|trace|stats)")
	}

	c, err := reconf.DialControl(*addr, *timeout)
	if err != nil {
		return err
	}
	defer c.Close()

	arg := func(i int) string {
		if i < len(rest) {
			return rest[i]
		}
		return ""
	}
	need := func(n int) error {
		if len(rest) < n+1 {
			return fmt.Errorf("%s: missing arguments", rest[0])
		}
		return nil
	}

	switch rest[0] {
	case "topology":
		topo, err := c.Topology()
		if err != nil {
			return err
		}
		fmt.Println(topo)
	case "instances":
		insts, err := c.Instances()
		if err != nil {
			return err
		}
		fmt.Println(strings.Join(insts, "\n"))
	case "move":
		if err := need(3); err != nil {
			return err
		}
		if err := c.Move(arg(1), arg(2), arg(3)); err != nil {
			return err
		}
		fmt.Println("moved", arg(1), "->", arg(2), "on", arg(3))
	case "replace":
		if err := need(2); err != nil {
			return err
		}
		if err := c.Replace(arg(1), arg(2), arg(3), arg(4)); err != nil {
			return err
		}
		fmt.Println("replaced", arg(1), "->", arg(2))
	case "update":
		if err := need(3); err != nil {
			return err
		}
		if err := c.Update(arg(1), arg(2), arg(3)); err != nil {
			return err
		}
		fmt.Println("updated", arg(1), "->", arg(2), "running module", arg(3))
	case "replicate":
		if err := need(2); err != nil {
			return err
		}
		if err := c.Replicate(arg(1), arg(2), arg(3)); err != nil {
			return err
		}
		fmt.Println("replicated", arg(1), "->", arg(2))
	case "remove":
		if err := need(1); err != nil {
			return err
		}
		if err := c.Remove(arg(1)); err != nil {
			return err
		}
		fmt.Println("removed", arg(1))
	case "trace":
		trace, err := c.Trace()
		if err != nil {
			return err
		}
		fmt.Println(reconf.FormatTrace(trace))
	case "stats":
		stats, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Println(stats)
	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
	return nil
}
