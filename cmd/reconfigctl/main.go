// Command reconfigctl drives dynamic reconfigurations against a running
// polybus application over its control plane.
//
//	reconfigctl -addr 127.0.0.1:7008 topology
//	reconfigctl -addr 127.0.0.1:7008 instances
//	reconfigctl -addr 127.0.0.1:7008 [-dry-run] move <inst> <newName> <machine>
//	reconfigctl -addr 127.0.0.1:7008 [-dry-run] replace <inst> <newName> [machine] [module]
//	reconfigctl -addr 127.0.0.1:7008 [-dry-run] update <inst> <newName> <module>
//	reconfigctl -addr 127.0.0.1:7008 replicate <inst> <newName> [machine]
//	reconfigctl -addr 127.0.0.1:7008 remove <inst>
//	reconfigctl -addr 127.0.0.1:7008 trace [txid]
//	reconfigctl -addr 127.0.0.1:7008 stats
//	reconfigctl -addr 127.0.0.1:7008 replicas
//	reconfigctl -addr 127.0.0.1:7008 record [on|off]
//	reconfigctl -addr 127.0.0.1:7008 replay <inst>
//	reconfigctl -addr 127.0.0.1:7008 watch [-interval 2s] [-count 1] [-windows 5]
//	reconfigctl -addr 127.0.0.1:7008 timeseries [metric] [windows]
//	reconfigctl -addr 127.0.0.1:7008 health <inst> [baseline,baseline...]
//	reconfigctl -addr 127.0.0.1:7008 events [cursor]
//
// The replacement-family commands (move, replace, update) run as a
// transaction on the application side: every primitive journals a
// compensating inverse, and a failure at any step rolls the system back
// to its pre-reconfiguration state. The transaction's step trace — and,
// on failure, the rollback report — is printed after the command. With
// -dry-run the planned step sequence is printed without executing it.
//
// `stats` prints a JSON snapshot: bus counters, the telemetry registry
// (per-interface message counts, queue depths, per-module flag-check and
// state-transfer timings), and the retained transaction IDs. `trace`
// prints the primitive audit trail; `trace <txid>` prints that
// transaction's span timeline (quiesce wait, state move, rebind, restore
// wait, commit or rollback) with its step trace.
//
// `replicas` prints the health of every supervised replica group as JSON:
// live members with their heartbeat counter and queued backlog, dead
// members awaiting rebuild, and the supervision counters (detections,
// recoveries, busy-retries, failures).
//
// `record` prints the record ring's status as JSON (capacity, retained
// records, per-queue delivery sequences, memory bound); `record on` and
// `record off` toggle recording at runtime. `replay <inst>` replays the
// recorded window against the instance's module in-process on the
// application side and prints the reproduction report — whether the
// replayed output sequence matches the recorded one byte-for-byte.
//
// `watch` renders a per-instance table of the windowed telemetry —
// delivery rate, queued backlog, error rate, sustained p99 delivery
// latency and health verdict — aggregated over the last -windows rolled
// windows; with -count 0 it refreshes every -interval until interrupted.
// `timeseries` lists the rolled metric names, or prints one metric's
// retained windows as JSON. `health <inst>` prints the instance's
// structured verdict with its evidence windows (the optional second
// argument overrides the baseline peers, comma-separated). `events`
// prints the structured event log after the given cursor.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reconfigctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("reconfigctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7008", "control plane address")
	timeout := fs.Duration("timeout", 5*time.Second, "dial timeout")
	dryRun := fs.Bool("dry-run", false, "print the replacement plan without executing it (move/replace/update)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("no command (topology|instances|move|replace|update|replicate|remove|trace|stats|replicas|record|replay|watch|timeseries|health|events)")
	}

	c, err := reconf.DialControl(*addr, *timeout)
	if err != nil {
		return err
	}
	defer c.Close()

	arg := func(i int) string {
		if i < len(rest) {
			return rest[i]
		}
		return ""
	}
	need := func(n int) error {
		if len(rest) < n+1 {
			return fmt.Errorf("%s: missing arguments", rest[0])
		}
		return nil
	}
	// plan prints the step sequence a replacement-family command would run.
	plan := func(inst, newName, machine, module string) error {
		steps, err := c.Plan(inst, newName, machine, module)
		if err != nil {
			return err
		}
		fmt.Println("plan (dry run, nothing executed):")
		for _, s := range steps {
			fmt.Println(" ", s)
		}
		return nil
	}
	// report prints the transaction trace, then surfaces the script error.
	report := func(tx *reconf.TxReport, err error) error {
		if tx != nil {
			fmt.Print(tx.Format())
		}
		return err
	}

	switch rest[0] {
	case "topology":
		topo, err := c.Topology()
		if err != nil {
			return err
		}
		fmt.Println(topo)
	case "instances":
		insts, err := c.Instances()
		if err != nil {
			return err
		}
		fmt.Println(strings.Join(insts, "\n"))
	case "move":
		if err := need(3); err != nil {
			return err
		}
		if *dryRun {
			return plan(arg(1), arg(2), arg(3), "")
		}
		if err := report(c.Move(arg(1), arg(2), arg(3))); err != nil {
			return err
		}
		fmt.Println("moved", arg(1), "->", arg(2), "on", arg(3))
	case "replace":
		if err := need(2); err != nil {
			return err
		}
		if *dryRun {
			return plan(arg(1), arg(2), arg(3), arg(4))
		}
		if err := report(c.Replace(arg(1), arg(2), arg(3), arg(4))); err != nil {
			return err
		}
		fmt.Println("replaced", arg(1), "->", arg(2))
	case "update":
		if err := need(3); err != nil {
			return err
		}
		if *dryRun {
			return plan(arg(1), arg(2), "", arg(3))
		}
		if err := report(c.Update(arg(1), arg(2), arg(3))); err != nil {
			return err
		}
		fmt.Println("updated", arg(1), "->", arg(2), "running module", arg(3))
	case "replicate":
		if err := need(2); err != nil {
			return err
		}
		if err := c.Replicate(arg(1), arg(2), arg(3)); err != nil {
			return err
		}
		fmt.Println("replicated", arg(1), "->", arg(2))
	case "remove":
		if err := need(1); err != nil {
			return err
		}
		if err := c.Remove(arg(1)); err != nil {
			return err
		}
		fmt.Println("removed", arg(1))
	case "trace":
		if txid := arg(1); txid != "" {
			lines, err := c.TraceTx(txid)
			if err != nil {
				return err
			}
			fmt.Println(strings.Join(lines, "\n"))
			return nil
		}
		trace, err := c.Trace()
		if err != nil {
			return err
		}
		fmt.Println(reconf.FormatTrace(trace))
	case "stats":
		stats, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Println(stats)
	case "replicas":
		reps, err := c.Replicas()
		if err != nil {
			return err
		}
		fmt.Println(reps)
	case "record":
		mode := arg(1)
		if mode != "" && mode != "on" && mode != "off" {
			return fmt.Errorf("record: want on, off or no argument, got %q", mode)
		}
		status, err := c.Record(mode)
		if err != nil {
			return err
		}
		fmt.Println(status)
	case "replay":
		if err := need(1); err != nil {
			return err
		}
		rep, err := c.Replay(arg(1))
		if err != nil {
			return err
		}
		fmt.Println(rep)
	case "watch":
		wfs := flag.NewFlagSet("watch", flag.ContinueOnError)
		interval := wfs.Duration("interval", 2*time.Second, "refresh interval between iterations")
		count := wfs.Int("count", 1, "iterations to print; <=0 repeats until interrupted")
		windows := wfs.Int("windows", 0, "rolled windows to aggregate per row (0 = server default)")
		if err := wfs.Parse(rest[1:]); err != nil {
			return err
		}
		for i := 0; *count <= 0 || i < *count; i++ {
			if i > 0 {
				time.Sleep(*interval)
				fmt.Println()
			}
			tbl, err := c.Watch(*windows)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
		}
	case "timeseries":
		k := 0
		if v := arg(2); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("timeseries: windows must be an integer, got %q", v)
			}
			k = n
		}
		doc, err := c.Timeseries(arg(1), k)
		if err != nil {
			return err
		}
		fmt.Println(doc)
	case "health":
		if err := need(1); err != nil {
			return err
		}
		var baseline []string
		if b := arg(2); b != "" {
			baseline = strings.Split(b, ",")
		}
		verdict, err := c.Health(arg(1), baseline)
		if err != nil {
			return err
		}
		fmt.Println(verdict)
	case "events":
		var since uint64
		if v := arg(1); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return fmt.Errorf("events: cursor must be a non-negative integer, got %q", v)
			}
			since = n
		}
		doc, err := c.Events(since)
		if err != nil {
			return err
		}
		fmt.Println(doc)
	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
	return nil
}
