package main

import (
	"io"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/fixtures"
)

func startApp(t *testing.T) (*reconf.App, string) {
	t.Helper()
	app, err := reconf.Load(reconf.Config{
		SpecText: fixtures.MonitorSpec,
		Sources: map[string]reconf.ModuleSource{
			"compute": {Files: map[string]string{"compute.go": fixtures.ComputeSource}},
		},
		Native: map[string]reconf.NativeModule{
			"sensor":  fixtures.Sensor(fixtures.SensorConfig{Interval: 1}),
			"display": fixtures.Display(4, 1000, 1, nil),
		},
		SleepUnit:    100 * time.Microsecond,
		StateTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Stop)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := app.ServeControl(l)
	t.Cleanup(func() { srv.Close() })
	return app, srv.Addr().String()
}

func TestReconfigctlCommands(t *testing.T) {
	_, addr := startApp(t)
	time.Sleep(50 * time.Millisecond) // let the first request start

	ok := [][]string{
		{"-addr", addr, "topology"},
		{"-addr", addr, "instances"},
		{"-addr", addr, "stats"},
		{"-addr", addr, "trace"},
		{"-addr", addr, "-dry-run", "move", "compute", "compute2", "machineB"},
		{"-addr", addr, "move", "compute", "compute2", "machineB"},
		{"-addr", addr, "trace"},
		{"-addr", addr, "replicate", "compute2", "computeB", "machineC"},
		{"-addr", addr, "remove", "computeB"},
	}
	for _, args := range ok {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}

	bad := [][]string{
		{"-addr", addr},                                    // no command
		{"-addr", addr, "frobnicate"},                      // unknown
		{"-addr", addr, "move", "compute2"},                // missing args
		{"-addr", addr, "move", "g", "h", "m"},             // unknown instance
		{"-addr", addr, "remove"},                          // missing args
		{"-addr", addr, "update", "x"},                     // missing args
		{"-addr", addr, "replace", "x"},                    // missing args
		{"-addr", addr, "replicate", "x"},                  // missing args
		{"-addr", "127.0.0.1:1", "topology"},               // dead server
		{"-addr", addr, "-dry-run", "move", "g", "h", "m"}, // plan for unknown instance
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("no error for %v", args)
		}
	}
}

// capture runs fn with os.Stdout redirected into a buffer.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := fn()
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

// TestReconfigctlTraceTx drives one committed and one rolled-back
// replacement, then renders each transaction's span timeline with
// `trace <txid>` and checks it is correlated with the step trace the
// TxReport carried.
func TestReconfigctlTraceTx(t *testing.T) {
	_, addr := startApp(t)
	time.Sleep(50 * time.Millisecond)

	c, err := reconf.DialControl(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Committed: a plain move.
	tx, err := c.Move("compute", "compute2", "machineB")
	if err != nil {
		t.Fatalf("move: %v", err)
	}
	if tx.TxID == "" || !tx.Committed {
		t.Fatalf("move tx = %+v, want committed with TxID", tx)
	}

	// Rolled back: an update to a module that does not exist.
	badTx, badErr := c.Update("compute2", "compute3", "no-such-module")
	if badErr == nil {
		t.Fatal("update to missing module succeeded")
	}
	if badTx == nil || badTx.TxID == "" || !badTx.RolledBack {
		t.Fatalf("failed update tx = %+v, want rolled back with TxID", badTx)
	}

	for _, tc := range []struct {
		tx      *reconf.TxReport
		outcome string
	}{
		{tx, "committed"},
		{badTx, "rolled-back"},
	} {
		out, err := capture(t, func() error {
			return run([]string{"-addr", addr, "trace", tc.tx.TxID})
		})
		if err != nil {
			t.Fatalf("trace %s: %v", tc.tx.TxID, err)
		}
		for _, want := range []string{tc.tx.TxID, tc.outcome, "steps:"} {
			if !strings.Contains(out, want) {
				t.Errorf("trace %s missing %q:\n%s", tc.tx.TxID, want, out)
			}
		}
		// The timeline's step section is the TxReport step trace.
		for _, step := range tc.tx.Steps {
			if !strings.Contains(out, step) {
				t.Errorf("trace %s missing step %q:\n%s", tc.tx.TxID, step, out)
			}
		}
	}
	if tl, _ := capture(t, func() error { return run([]string{"-addr", addr, "trace", tx.TxID}) }); !strings.Contains(tl, "quiesce_wait") {
		t.Errorf("committed timeline missing quiesce_wait span:\n%s", tl)
	}

	// Unknown transaction IDs are refused.
	if err := run([]string{"-addr", addr, "trace", "tx-9999"}); err == nil {
		t.Error("trace of unknown txid accepted")
	}
}
