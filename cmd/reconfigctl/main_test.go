package main

import (
	"net"
	"testing"
	"time"

	"repro"
	"repro/internal/fixtures"
)

func startApp(t *testing.T) (*reconf.App, string) {
	t.Helper()
	app, err := reconf.Load(reconf.Config{
		SpecText: fixtures.MonitorSpec,
		Sources: map[string]reconf.ModuleSource{
			"compute": {Files: map[string]string{"compute.go": fixtures.ComputeSource}},
		},
		Native: map[string]reconf.NativeModule{
			"sensor":  fixtures.Sensor(fixtures.SensorConfig{Interval: 1}),
			"display": fixtures.Display(4, 1000, 1, nil),
		},
		SleepUnit:    100 * time.Microsecond,
		StateTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Stop)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := app.ServeControl(l)
	t.Cleanup(func() { srv.Close() })
	return app, srv.Addr().String()
}

func TestReconfigctlCommands(t *testing.T) {
	_, addr := startApp(t)
	time.Sleep(50 * time.Millisecond) // let the first request start

	ok := [][]string{
		{"-addr", addr, "topology"},
		{"-addr", addr, "instances"},
		{"-addr", addr, "stats"},
		{"-addr", addr, "trace"},
		{"-addr", addr, "-dry-run", "move", "compute", "compute2", "machineB"},
		{"-addr", addr, "move", "compute", "compute2", "machineB"},
		{"-addr", addr, "trace"},
		{"-addr", addr, "replicate", "compute2", "computeB", "machineC"},
		{"-addr", addr, "remove", "computeB"},
	}
	for _, args := range ok {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}

	bad := [][]string{
		{"-addr", addr},                        // no command
		{"-addr", addr, "frobnicate"},          // unknown
		{"-addr", addr, "move", "compute2"},    // missing args
		{"-addr", addr, "move", "g", "h", "m"}, // unknown instance
		{"-addr", addr, "remove"},              // missing args
		{"-addr", addr, "update", "x"},         // missing args
		{"-addr", addr, "replace", "x"},        // missing args
		{"-addr", addr, "replicate", "x"},      // missing args
		{"-addr", "127.0.0.1:1", "topology"},   // dead server
		{"-addr", addr, "-dry-run", "move", "g", "h", "m"}, // plan for unknown instance
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("no error for %v", args)
		}
	}
}
