// Command polybus runs a distributed application from a configuration
// specification: the software bus, every module instance (interpreted from
// module-language sources, automatically prepared for reconfiguration when
// their specification declares points), and two TCP listeners — one for
// remote module attachments, one for the reconfiguration control plane
// (drive it with reconfigctl).
//
//	polybus -spec app.mil -srcdir ./modules [-app name] \
//	        [-listen 127.0.0.1:7007] [-control 127.0.0.1:7008] \
//	        [-obs-addr 127.0.0.1:7009] [-pprof] [-trace-sample 100] \
//	        [-record 4096] [-record-spill run.rec] [-preflight] \
//	        [-duration 30s] [-sleepunit 10ms]
//
// Module sources are read from <srcdir>/<module>/*.go. Modules without a
// source directory must be attached remotely (their instances wait for a
// TCP attachment).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/bus"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "polybus:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("polybus", flag.ContinueOnError)
	var (
		specFile   = fs.String("spec", "", "configuration specification (required)")
		srcDir     = fs.String("srcdir", "", "directory of per-module source directories (required)")
		appName    = fs.String("app", "", "application name (default: the sole one)")
		listenAddr = fs.String("listen", "", "TCP address for remote module attachments")
		ctlAddr    = fs.String("control", "", "TCP address for the reconfiguration control plane")
		obsAddr    = fs.String("obs-addr", "", "HTTP address for /metrics, /healthz, /traces, /timeseries, /health/{inst}, /events")
		obsPprof   = fs.Bool("pprof", false, "also mount /debug/pprof on the observability address (requires -obs-addr)")
		traceSmpl  = fs.Int("trace-sample", 0, "sample 1-in-N message traces into the flight recorder (0 = off)")
		traceBuf   = fs.Int("trace-buffer", 0, "flight recorder capacity in spans (0 = default)")
		recordBuf  = fs.Int("record", 0, "record every delivered message into a ring of this capacity (0 = off)")
		recordFile = fs.String("record-spill", "", "also spill every record to this file (requires -record)")
		preflight  = fs.Bool("preflight", false, "gate replacements on a replay of the recorded window (requires -record)")
		duration   = fs.Duration("duration", 0, "run time (0 = until interrupted)")
		sleepUnit  = fs.Duration("sleepunit", 10*time.Millisecond, "duration of one mh.Sleep tick")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specFile == "" || *srcDir == "" {
		return fmt.Errorf("-spec and -srcdir are required")
	}
	specText, err := os.ReadFile(*specFile)
	if err != nil {
		return err
	}

	cfg := reconf.Config{
		SpecText:        string(specText),
		Application:     *appName,
		Sources:         map[string]reconf.ModuleSource{},
		SleepUnit:       *sleepUnit,
		TraceSample:     *traceSmpl,
		TraceBuffer:     *traceBuf,
		RecordBuffer:    *recordBuf,
		PreflightReplay: *preflight,
	}
	if *recordFile != "" {
		if *recordBuf <= 0 {
			return fmt.Errorf("-record-spill requires -record")
		}
		spill, err := os.Create(*recordFile)
		if err != nil {
			return err
		}
		defer spill.Close()
		cfg.RecordSpill = spill
	}
	entries, err := os.ReadDir(*srcDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		files, err := readModuleDir(filepath.Join(*srcDir, e.Name()))
		if err != nil {
			return err
		}
		if len(files) > 0 {
			cfg.Sources[e.Name()] = reconf.ModuleSource{Files: files}
		}
	}

	app, err := reconf.Load(cfg)
	if err != nil {
		return err
	}
	fmt.Println("application:", app.Application.Name)
	fmt.Println(app.Topology())
	if rec := app.Recorder(); rec != nil {
		fmt.Printf("recording: ring capacity %d, preflight replay %v\n", rec.Cap(), *preflight)
	}

	// Launch local instances; instances whose module has no local source
	// wait for a remote attachment.
	remoteWait := []string{}
	for _, inst := range app.Application.Instances {
		if _, ok := cfg.Sources[inst.Module]; !ok {
			remoteWait = append(remoteWait, inst.Name)
			continue
		}
		if inst.Replicated() {
			for i := 1; i <= inst.Replicas; i++ {
				member := fmt.Sprintf("%s.%d", inst.Name, i)
				if err := app.Launch(member); err != nil {
					return err
				}
				fmt.Println("launched", member)
			}
			app.Supervisor(inst.Name).Start()
			continue
		}
		if err := app.Launch(inst.Name); err != nil {
			return err
		}
		fmt.Println("launched", inst.Name)
	}
	if len(remoteWait) > 0 {
		fmt.Println("waiting for remote attachments:", strings.Join(remoteWait, ", "))
	}
	// The launch loop above replaces App.Start (it skips instances that
	// wait for remote attachments), so arm the rollup roller here the way
	// App.Start would; app.Stop stops it on the way out.
	app.Timeseries().Start()

	if *listenAddr != "" {
		l, err := net.Listen("tcp", *listenAddr)
		if err != nil {
			return err
		}
		srv := bus.NewServer(app.Bus(), l)
		defer srv.Close()
		fmt.Println("module attachments on", srv.Addr())
	}
	if *ctlAddr != "" {
		l, err := net.Listen("tcp", *ctlAddr)
		if err != nil {
			return err
		}
		ctl := app.ServeControl(l)
		defer ctl.Close()
		fmt.Println("control plane on", ctl.Addr())
	}
	if *obsAddr != "" {
		l, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			return err
		}
		var opts []reconf.ObsOption
		if *obsPprof {
			opts = append(opts, reconf.WithPprof())
		}
		obs := app.ServeObs(l, opts...)
		defer obs.Close()
		fmt.Println("observability on", obs.Addr())
	} else if *obsPprof {
		return fmt.Errorf("-pprof requires -obs-addr")
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if *duration > 0 {
		select {
		case <-time.After(*duration):
		case <-sigs:
		}
	} else {
		<-sigs
	}

	fmt.Println("\nfinal topology:")
	fmt.Println(app.Topology())
	fmt.Println("\nreconfiguration trace:")
	fmt.Println(reconf.FormatTrace(app.Trace()))
	st := app.Bus().Stats()
	fmt.Printf("\nbus stats: delivered=%d dropped=%d rebinds=%d signals=%d moves=%d\n",
		st.Delivered, st.Dropped, st.Rebinds, st.Signals, st.Moves)
	app.Stop()
	return nil
}

func readModuleDir(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	files := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		files[e.Name()] = string(data)
	}
	return files, nil
}
