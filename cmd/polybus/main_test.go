package main

import (
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/fixtures"
)

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func writeApp(t *testing.T) (specFile, srcDir string) {
	t.Helper()
	dir := t.TempDir()
	specFile = filepath.Join(dir, "app.mil")
	if err := os.WriteFile(specFile, []byte(fixtures.MonitorSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	srcDir = filepath.Join(dir, "modules")
	for name, src := range map[string]string{
		"compute": fixtures.ComputeSource,
		"sensor":  fixtures.SensorSource,
		"display": fixtures.DisplaySource,
	} {
		mdir := filepath.Join(srcDir, name)
		if err := os.MkdirAll(mdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(mdir, name+".go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return specFile, srcDir
}

// TestPolybusServesAndIsControllable boots the whole application from the
// specification file and drives a migration through the control plane —
// the operator workflow of README.md.
func TestPolybusServesAndIsControllable(t *testing.T) {
	specFile, srcDir := writeApp(t)
	ctlAddr := freePort(t)
	busAddr := freePort(t)
	obsAddr := freePort(t)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-spec", specFile,
			"-srcdir", srcDir,
			"-control", ctlAddr,
			"-listen", busAddr,
			"-obs-addr", obsAddr,
			"-trace-sample", "1",
			"-duration", "4s",
			"-sleepunit", "1ms",
		})
	}()

	// Wait for the control plane.
	var client *reconf.ControlClient
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		client, err = reconf.DialControl(ctlAddr, 200*time.Millisecond)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("control plane never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer client.Close()

	topo, err := client.Topology()
	if err != nil || !strings.Contains(topo, "instance compute (module compute)") {
		t.Fatalf("topology = %q, %v", topo, err)
	}

	// Migrate compute while the application serves.
	time.Sleep(100 * time.Millisecond)
	if _, err := client.Move("compute", "compute2", "machineB"); err != nil {
		t.Fatalf("remote move: %v", err)
	}
	topo, err = client.Topology()
	if err != nil || !strings.Contains(topo, "instance compute2 (module compute) on machineB") {
		t.Fatalf("post-move topology = %q, %v", topo, err)
	}
	trace, err := client.Trace()
	if err != nil || len(trace) == 0 {
		t.Fatalf("trace = %v, %v", trace, err)
	}
	stats, err := client.Stats()
	if err != nil || !strings.Contains(stats, `"rebinds": 1`) {
		t.Fatalf("stats = %q, %v", stats, err)
	}

	// The observability endpoint serves Prometheus metrics and health.
	metrics := obsGet(t, "http://"+obsAddr+"/metrics")
	for _, want := range []string{"bus_delivered_total", "bus_rebinds_total 1", "reconfig_tx_total_ns_count"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if got := obsGet(t, "http://"+obsAddr+"/healthz"); !strings.Contains(got, "ok") {
		t.Errorf("/healthz = %q, want ok", got)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("polybus: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("polybus never exited")
	}
}

func obsGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestPolybusValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-spec", "/nonexistent", "-srcdir", "/nonexistent"}); err == nil {
		t.Error("bad spec accepted")
	}
	specFile, _ := writeApp(t)
	if err := run([]string{"-spec", specFile, "-srcdir", "/nonexistent"}); err == nil {
		t.Error("bad srcdir accepted")
	}
}

func TestReadModuleDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte("package a"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	files, err := readModuleDir(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("files = %v, %v", files, err)
	}
	if _, err := readModuleDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing dir accepted")
	}
}
