// Command mhreplay replays a recorded message window offline: it reads a
// record spill file written by a bus with recording enabled (polybus
// -record N -record-spill file, or Config.RecordSpill), re-runs the
// window against one instance's module in-process — driving it through
// the mh runtime on a virtual clock — and reports whether the replayed
// output sequence reproduces the recorded one byte-for-byte.
//
//	mhreplay -log run.rec -spec app.mil -srcdir ./modules -inst filter
//	mhreplay -log run.rec -canon
//
// With -canon the recorded window is printed in its canonical
// deterministic form (per-queue delivery logs, trace and timing fields
// excluded) instead of being replayed — the exact rendering the
// determinism gate compares across runs.
//
// Only modules with module-language sources can be replayed offline;
// native (in-process Go) modules exist only inside their host binary.
// The command exits 0 when the replay reproduces the recording, 1 on
// divergence, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/replay"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhreplay:", err)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("mhreplay", flag.ContinueOnError)
	var (
		logFile   = fs.String("log", "", "record spill file (required)")
		canon     = fs.Bool("canon", false, "print the canonical per-queue log and exit")
		specFile  = fs.String("spec", "", "configuration specification (required unless -canon)")
		srcDir    = fs.String("srcdir", "", "directory of per-module source directories (required unless -canon)")
		appName   = fs.String("app", "", "application name (default: the sole one)")
		inst      = fs.String("inst", "", "instance to replay (required unless -canon)")
		timeout   = fs.Duration("timeout", 30*time.Second, "bound on the replay run")
		jsonOut   = fs.Bool("json", false, "print the full report as JSON")
		sleepUnit = fs.Duration("sleepunit", time.Millisecond, "sleep unit for module preparation (replay itself runs on a virtual clock)")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *logFile == "" {
		return 2, fmt.Errorf("-log is required")
	}
	recs, err := replay.ReadLogFile(*logFile)
	if err != nil {
		return 2, err
	}
	if *canon {
		fmt.Print(replay.Canonical(recs))
		return 0, nil
	}
	if *specFile == "" || *srcDir == "" || *inst == "" {
		return 2, fmt.Errorf("-spec, -srcdir and -inst are required (or use -canon)")
	}
	specText, err := os.ReadFile(*specFile)
	if err != nil {
		return 2, err
	}
	cfg := reconf.Config{
		SpecText:    string(specText),
		Application: *appName,
		Sources:     map[string]reconf.ModuleSource{},
		SleepUnit:   *sleepUnit,
	}
	cfg.Timeouts.StateMove = *timeout
	entries, err := os.ReadDir(*srcDir)
	if err != nil {
		return 2, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		files, err := readModuleDir(filepath.Join(*srcDir, e.Name()))
		if err != nil {
			return 2, err
		}
		if len(files) > 0 {
			cfg.Sources[e.Name()] = reconf.ModuleSource{Files: files}
		}
	}
	app, err := reconf.Load(cfg)
	if err != nil {
		return 2, err
	}
	defer app.Stop()

	rep, err := app.ReplayRecorded(*inst, recs)
	if err != nil {
		return 2, err
	}
	if *jsonOut {
		data, _ := json.MarshalIndent(rep, "", "  ")
		fmt.Println(string(data))
	} else {
		fmt.Printf("replayed %s (module %s): %d recorded inputs, %d consumed, %d outputs (recorded %d)\n",
			rep.Instance, rep.Module, rep.Window, rep.Consumed, rep.Replayed, rep.Expected)
		if rep.Err != "" {
			fmt.Println("termination:", rep.Err)
		}
	}
	if !rep.Match {
		if rep.Divergence != nil {
			fmt.Println("DIVERGED:", rep.Divergence)
		} else {
			fmt.Println("DIVERGED")
		}
		return 1, nil
	}
	fmt.Println("reproduced: replayed output sequence matches the recording")
	return 0, nil
}

func readModuleDir(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	files := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		files[e.Name()] = string(data)
	}
	return files, nil
}
