package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fixtures"
)

var update = flag.Bool("update", false, "rewrite golden files")

// writeMonitor lays out the compute module and a (possibly sabotaged)
// Monitor spec in a temp dir.
func writeMonitor(t *testing.T, specText string) (srcDir, specFile string) {
	t.Helper()
	dir := t.TempDir()
	srcDir = filepath.Join(dir, "compute")
	if err := os.MkdirAll(srcDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(srcDir, "compute.go"), []byte(fixtures.ComputeSource), 0o644); err != nil {
		t.Fatal(err)
	}
	specFile = filepath.Join(dir, "app.mil")
	if err := os.WriteFile(specFile, []byte(specText), 0o644); err != nil {
		t.Fatal(err)
	}
	return srcDir, specFile
}

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestMhlintCleanMonitor(t *testing.T) {
	srcDir, specFile := writeMonitor(t, fixtures.MonitorSpec)
	code, out, stderr := runLint(t, "-src", srcDir, "-spec", specFile, "-module", "compute")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s, stdout: %s", code, stderr, out)
	}
	if !strings.Contains(out, "ok: no diagnostics") {
		t.Errorf("stdout: %s", out)
	}
}

func TestMhlintUnsoundCaptureSet(t *testing.T) {
	spec := strings.Replace(fixtures.MonitorSpec,
		"state R = {num, n, rp} ::", "state R = {n, rp} ::", 1)
	srcDir, specFile := writeMonitor(t, spec)
	code, out, _ := runLint(t, "-src", srcDir, "-spec", specFile, "-module", "compute")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout: %s", code, out)
	}
	if !strings.Contains(out, "MH006") || !strings.Contains(out, "num") {
		t.Errorf("stdout: %s", out)
	}
}

func TestMhlintWarningsExitZero(t *testing.T) {
	spec := strings.Replace(fixtures.MonitorSpec,
		"state R = {num, n, rp} ::", "state R = {num, n, rp, temper} ::", 1)
	srcDir, specFile := writeMonitor(t, spec)
	code, out, _ := runLint(t, "-src", srcDir, "-spec", specFile, "-module", "compute")
	if code != 0 {
		t.Fatalf("exit %d, want 0; stdout: %s", code, out)
	}
	if !strings.Contains(out, "MH007") || !strings.Contains(out, "temper") {
		t.Errorf("stdout: %s", out)
	}
}

func TestMhlintReplacement(t *testing.T) {
	srcDir, specFile := writeMonitor(t, fixtures.MonitorSpec)
	newDir := filepath.Join(t.TempDir(), "compute.v2")
	if err := os.MkdirAll(newDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// The replacement widens num to float64: the AR-stack frames no
	// longer map.
	newSrc := strings.Replace(fixtures.ComputeSource,
		"func compute(num int, n int, rp *float64)",
		"func compute(num float64, n int, rp *float64)", 1)
	newSrc = strings.Replace(newSrc, "float64(num)", "num", 1)
	newSrc = strings.Replace(newSrc, "compute(n, n, &response)", "compute(float64(n), n, &response)", 1)
	newSrc = strings.Replace(newSrc, "compute(1, 1, &response)", "compute(1.0, 1, &response)", 1)
	if err := os.WriteFile(filepath.Join(newDir, "compute.go"), []byte(newSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runLint(t,
		"-src", srcDir, "-spec", specFile, "-module", "compute", "-new", newDir)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout: %s stderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "MH014") {
		t.Errorf("stdout: %s", out)
	}
}

func TestMhlintJSONGolden(t *testing.T) {
	spec := strings.Replace(fixtures.MonitorSpec,
		"state R = {num, n, rp} ::", "state R = {n, rp, temper} ::", 1)
	srcDir, specFile := writeMonitor(t, spec)
	code, out, _ := runLint(t, "-json", "-src", srcDir, "-spec", specFile, "-module", "compute")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout: %s", code, out)
	}
	// The spec lives in a temp dir; normalize its path for the golden.
	got := strings.ReplaceAll(out, specFile, "app.mil")

	path := filepath.Join("testdata", "unsound.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("JSON mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestMhlintUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                       // no -src
		{"-src", "/nonexistent"}, // bad dir
		{"-badflag"},             // unknown flag
		{"-src", ".", "-mode", "bogus"},
	}
	for _, args := range cases {
		if code, _, _ := runLint(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
	// -spec without -module
	srcDir, specFile := writeMonitor(t, fixtures.MonitorSpec)
	if code, _, _ := runLint(t, "-src", srcDir, "-spec", specFile); code != 2 {
		t.Error("spec without module accepted")
	}
	// unknown module
	if code, _, _ := runLint(t, "-src", srcDir, "-spec", specFile, "-module", "ghost"); code != 2 {
		t.Error("unknown module accepted")
	}
}
