// Command mhlint statically verifies a module configuration for dynamic
// reconfiguration safety before the transform (cmd/mhgen) ever runs.
//
//	mhlint -src ./modules/compute [-spec app.mil -module compute] \
//	       [-new ./modules/compute.v2] [-mode all|live|spec] [-json]
//
// It runs the internal/analyze passes over the module source, the MIL
// configuration, and (with -new) a proposed replacement module:
//
//   - capture-set soundness: the declared state lists (Figure 2) are
//     diffed against the liveness analysis — live-but-uncaptured
//     variables are errors, captured-but-dead ones are warnings;
//   - reconfiguration-point placement: unreachable points and reachable
//     recursive cycles with no point;
//   - binding compatibility: message signatures across every binding;
//   - replacement compatibility: procedure-by-procedure AR-stack shape,
//     edge numbering, and point labels of the old vs new module.
//
// Diagnostics carry stable MHxxx codes (documented in the README) and
// render as compiler-style text or, with -json, a stable JSON form.
//
// Exit status: 0 when clean or warnings only, 1 when any error was
// reported, 2 on usage or I/O problems.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analyze"
	"repro/internal/mil"
	"repro/internal/transform"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mhlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		srcDir     = fs.String("src", "", "directory containing the module's .go files (required)")
		specFile   = fs.String("spec", "", "configuration specification to check against")
		moduleName = fs.String("module", "", "module name in the specification (required with -spec)")
		newDir     = fs.String("new", "", "directory containing a proposed replacement module's .go files")
		mode       = fs.String("mode", "", "capture mode under analysis: all, live or spec (default: spec when the specification declares state lists)")
		jsonOut    = fs.Bool("json", false, "emit diagnostics as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *srcDir == "" {
		fmt.Fprintln(stderr, "mhlint: -src is required")
		fs.Usage()
		return 2
	}

	cfg := analyze.Config{}
	switch *mode {
	case "all":
		cfg.Mode = transform.CaptureAll
	case "live":
		cfg.Mode = transform.CaptureLive
	case "spec":
		cfg.Mode = transform.CaptureSpec
	case "":
	default:
		fmt.Fprintf(stderr, "mhlint: unknown -mode %q\n", *mode)
		return 2
	}

	var err error
	cfg.Sources, err = readSources(*srcDir)
	if err != nil {
		fmt.Fprintln(stderr, "mhlint:", err)
		return 2
	}
	if *specFile != "" {
		if *moduleName == "" {
			fmt.Fprintln(stderr, "mhlint: -module is required with -spec")
			return 2
		}
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fmt.Fprintln(stderr, "mhlint:", err)
			return 2
		}
		// Parse only: validation findings are MH001 diagnostics.
		spec, err := mil.Parse(string(data))
		if err != nil {
			fmt.Fprintln(stderr, "mhlint:", err)
			return 2
		}
		cfg.Spec = spec
		cfg.SpecFile = *specFile
		cfg.Module = *moduleName
	}
	if *newDir != "" {
		cfg.Replacement, err = readSources(*newDir)
		if err != nil {
			fmt.Fprintln(stderr, "mhlint:", err)
			return 2
		}
	}

	rep, err := analyze.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "mhlint:", err)
		return 2
	}
	if *jsonOut {
		fmt.Fprint(stdout, rep.JSON())
	} else {
		fmt.Fprint(stdout, rep.Text())
	}
	if rep.HasErrors() {
		return 1
	}
	return 0
}

// readSources loads the non-test .go files of a directory, keyed by base
// name so diagnostics print stable paths.
func readSources(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	sources := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sources[e.Name()] = string(data)
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return sources, nil
}
