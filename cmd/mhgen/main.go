// Command mhgen runs the paper's source transformation from the command
// line: it prepares a module for reconfiguration participation.
//
//	mhgen -module compute -src ./modules/compute [-spec app.mil] \
//	      [-mode all|live|spec] [-o ./gen/compute] [-standalone] [-dot] \
//	      [-strict=false]
//
// The module's .go files (module language, see internal/interp's LANG.md)
// are read from -src. With -spec, the configuration specification supplies
// the per-point state variable lists (Figure 2) and -mode defaults to spec;
// otherwise all locals are captured. The instrumented sources are written
// to -o (or printed). -standalone emits a compilable package main bound to
// repro/mhrt; -dot also writes the static and reconfiguration call graphs
// (Figure 6) in Graphviz form.
//
// Before transforming, mhgen runs the static reconfiguration-safety
// analyzer (internal/analyze, also available as cmd/mhlint) and refuses
// configurations with errors — an unsound capture set, an unreachable
// reconfiguration point, a mistyped binding. -strict=false skips the gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analyze"
	"repro/internal/mil"
	"repro/internal/transform"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mhgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("mhgen", flag.ContinueOnError)
	var (
		moduleName = fs.String("module", "", "module name (required with -spec; otherwise informational)")
		srcDir     = fs.String("src", "", "directory containing the module's .go files (required)")
		specFile   = fs.String("spec", "", "configuration specification supplying reconfiguration point state lists")
		mode       = fs.String("mode", "", "capture mode: all, live or spec (default: spec with -spec, else all)")
		outDir     = fs.String("o", "", "output directory (default: print to stdout)")
		standalone = fs.Bool("standalone", false, "emit a compilable package main bound to repro/mhrt")
		dot        = fs.Bool("dot", false, "also write static.dot and reconfig.dot (Figure 6)")
		report     = fs.Bool("report", true, "print the per-procedure capture report")
		strict     = fs.Bool("strict", true, "refuse to transform a configuration the static analyzer rejects")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *srcDir == "" {
		return fmt.Errorf("-src is required")
	}

	sources, err := readSources(*srcDir)
	if err != nil {
		return err
	}

	opts := transform.Options{PointVars: map[string][]string{}}
	switch *mode {
	case "all":
		opts.Mode = transform.CaptureAll
	case "live":
		opts.Mode = transform.CaptureLive
	case "spec":
		opts.Mode = transform.CaptureSpec
	case "":
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	var spec *mil.Spec
	if *specFile != "" {
		if *moduleName == "" {
			return fmt.Errorf("-module is required with -spec")
		}
		data, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		spec, err = mil.ParseAndValidate(string(data))
		if err != nil {
			return err
		}
		m := spec.Module(*moduleName)
		if m == nil {
			return fmt.Errorf("specification has no module %s", *moduleName)
		}
		for _, pt := range m.ReconfigPoints {
			if len(pt.Vars) > 0 {
				opts.PointVars[pt.Label] = pt.Vars
			}
		}
		if opts.Mode == 0 && len(opts.PointVars) > 0 {
			opts.Mode = transform.CaptureSpec
		}
	}

	// Pre-transform gate: run the static analyzer; errors (an unsound
	// capture set, an unreachable point, ...) stop the transform.
	if *strict {
		acfg := analyze.Config{Sources: sources, Mode: opts.Mode}
		if spec != nil {
			acfg.Spec = spec
			acfg.SpecFile = *specFile
			acfg.Module = *moduleName
		}
		rep, err := analyze.Run(acfg)
		if err != nil {
			return err
		}
		if len(rep.Diags) > 0 {
			fmt.Fprint(os.Stderr, rep.Text())
		}
		if rep.HasErrors() {
			errs, _ := rep.Counts()
			return fmt.Errorf("static analysis found %d error(s); fix the configuration or rerun with -strict=false", errs)
		}
	}

	out, err := transform.Prepare(sources, opts)
	if err != nil {
		return err
	}
	files := out.Files
	if *standalone {
		if files, err = out.Standalone(); err != nil {
			return err
		}
	}

	if *outDir == "" {
		names := make([]string, 0, len(files))
		for n := range files {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(stdout, "// ---- %s ----\n%s\n", filepath.Base(n), files[n])
		}
	} else {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		for name, src := range files {
			dst := filepath.Join(*outDir, filepath.Base(name))
			if err := os.WriteFile(dst, []byte(src), 0o644); err != nil {
				return err
			}
			fmt.Fprintln(stdout, "wrote", dst)
		}
		if *dot {
			for name, content := range map[string]string{
				"static.dot":   out.StaticDOT,
				"reconfig.dot": out.ReconfigDOT,
			} {
				dst := filepath.Join(*outDir, name)
				if err := os.WriteFile(dst, []byte(content), 0o644); err != nil {
					return err
				}
				fmt.Fprintln(stdout, "wrote", dst)
			}
		}
	}
	if *report {
		fmt.Fprintf(stdout, "\n// reconfiguration graph:\n")
		for _, line := range strings.Split(strings.TrimSpace(out.Graph.String()), "\n") {
			fmt.Fprintln(stdout, "//   "+line)
		}
		fmt.Fprintf(stdout, "// capture sets:\n")
		for _, line := range strings.Split(strings.TrimSpace(out.ReportString()), "\n") {
			fmt.Fprintln(stdout, "//   "+line)
		}
	}
	return nil
}

func readSources(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	sources := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sources[e.Name()] = string(data)
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return sources, nil
}
