package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fixtures"
)

func writeModule(t *testing.T) (srcDir, specFile string) {
	t.Helper()
	dir := t.TempDir()
	srcDir = filepath.Join(dir, "compute")
	if err := os.MkdirAll(srcDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(srcDir, "compute.go"), []byte(fixtures.ComputeSource), 0o644); err != nil {
		t.Fatal(err)
	}
	specFile = filepath.Join(dir, "app.mil")
	if err := os.WriteFile(specFile, []byte(fixtures.MonitorSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return srcDir, specFile
}

func TestMhgenWritesInstrumentedModule(t *testing.T) {
	srcDir, specFile := writeModule(t)
	outDir := filepath.Join(t.TempDir(), "gen")

	err := run([]string{
		"-src", srcDir,
		"-spec", specFile,
		"-module", "compute",
		"-o", outDir,
		"-dot",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := os.ReadFile(filepath.Join(outDir, "compute.go"))
	if err != nil {
		t.Fatal(err)
	}
	// Spec mode applied: the Figure 2 state list {num, n, rp}.
	if !strings.Contains(string(gen), `mh.Capture("compute", "liiF", 4, num, n, *rp)`) {
		t.Errorf("generated module missing spec-mode capture:\n%s", gen)
	}
	for _, f := range []string{"static.dot", "reconfig.dot"} {
		data, err := os.ReadFile(filepath.Join(outDir, f))
		if err != nil || len(data) == 0 {
			t.Errorf("%s: %v", f, err)
		}
	}
}

func TestMhgenStandalone(t *testing.T) {
	srcDir, _ := writeModule(t)
	outDir := filepath.Join(t.TempDir(), "gen")
	err := run([]string{"-src", srcDir, "-o", outDir, "-standalone", "-mode", "all"}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	boot, err := os.ReadFile(filepath.Join(outDir, "mh_main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(boot), "mhrt.MustFromEnv") {
		t.Errorf("bootstrap:\n%s", boot)
	}
	gen, err := os.ReadFile(filepath.Join(outDir, "compute.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(gen), "package main") || !strings.Contains(string(gen), "func mhModuleMain()") {
		t.Errorf("standalone module:\n%s", gen)
	}
}

func TestMhgenErrors(t *testing.T) {
	srcDir, specFile := writeModule(t)
	cases := [][]string{
		{},                                 // no -src
		{"-src", "/nonexistent"},           // bad dir
		{"-src", srcDir, "-mode", "bogus"}, // bad mode
	}
	for _, args := range cases {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("no error for %v", args)
		}
	}
	// -spec without -module
	if err := run([]string{"-src", srcDir, "-spec", specFile}, os.Stdout); err == nil {
		t.Error("spec without module accepted")
	}
	// unknown module in spec
	if err := run([]string{"-src", srcDir, "-spec", specFile, "-module", "ghost"}, os.Stdout); err == nil {
		t.Error("unknown module accepted")
	}
}

func TestMhgenStrictGate(t *testing.T) {
	// Sabotage the Figure 2 state list: dropping num loses live state, so
	// the analyzer gate must refuse to transform.
	srcDir, _ := writeModule(t)
	dir := t.TempDir()
	badSpec := filepath.Join(dir, "bad.mil")
	spec := strings.Replace(fixtures.MonitorSpec,
		"state R = {num, n, rp} ::", "state R = {n, rp} ::", 1)
	if err := os.WriteFile(badSpec, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "gen")
	args := []string{"-src", srcDir, "-spec", badSpec, "-module", "compute", "-o", outDir}

	err := run(args, os.Stdout)
	if err == nil {
		t.Fatal("strict gate passed an unsound capture set")
	}
	if !strings.Contains(err.Error(), "static analysis") {
		t.Errorf("unexpected error: %v", err)
	}
	if _, statErr := os.Stat(filepath.Join(outDir, "compute.go")); statErr == nil {
		t.Error("output written despite failed gate")
	}

	// The escape hatch still transforms.
	if err := run(append(args, "-strict=false"), os.Stdout); err != nil {
		t.Fatalf("-strict=false: %v", err)
	}
}
